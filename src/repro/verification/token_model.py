"""Down-scaled models of the TokenCMP correctness substrate (Section 5).

Three models, mirroring the paper's verification targets:

* :class:`TokenSafetyModel` — token counting only, no starvation
  prevention ("TokenCMP-safety"): used to verify safety cheaply.
* :class:`TokenDstModel` — adds persistent requests with **distributed
  activation** (tables at every site, fixed priority, marking rule).
* :class:`TokenArbModel` — persistent requests with the **arbiter-based**
  activation mechanism (fair FIFO at the home arbiter).

Standard down-scaling is applied (paper Section 5): one block, two
processor caches plus memory, a small token count, values from a 2-value
data-independent domain, and a small bound on in-flight messages.  The
performance policy is left completely nondeterministic: any cache may
spontaneously send any legal combination of tokens anywhere, which means
a successful check covers *every* performance policy, hierarchical ones
included — the paper's key verification argument.

State encoding (hashable tuples):
  cache  = (tokens, owner, valid, value)
  mem    = (tokens, owner, value)
  net    = sorted tuple of messages
  wants  = per-proc pending operation: None | 'r' | 'w'
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import VerificationError
from repro.verification.checker import Model

MEM = "mem"


def _absorb(cache, tokens, owner, value):
    ctok, cown, cval, cdata = cache
    ntok = ctok + tokens
    nown = cown or owner
    if value is not None:
        return (ntok, nown, True, value)
    return (ntok, nown, cval if ntok > 0 else False, cdata if ntok > 0 else 0)


def _take(cache, tokens, with_owner):
    ctok, cown, cval, cdata = cache
    rest = ctok - tokens
    value = cdata if (with_owner or cval) else None
    if rest == 0:
        return (0, False, False, 0), value
    return (rest, cown and not with_owner, cval, cdata), value


class _TokenBase(Model):
    """Shared mechanics: token transfers, memory, invariants."""

    def __init__(self, n_caches: int = 2, total_tokens: int = 3, values: int = 2,
                 net_cap: int = 2, coarse_sends: bool = False,
                 atomic_broadcasts: bool = False):
        self.n = n_caches
        self.T = total_tokens
        self.D = values
        self.net_cap = net_cap
        # Down-scaling levers: with coarse_sends the nondeterministic policy
        # moves whole token holdings (the shape transient responses take);
        # with atomic_broadcasts persistent activates/deactivates update all
        # tables in one step (the atomic-broadcast abstraction).  Both keep
        # the persistent-request models' state spaces tractable.
        self.coarse_sends = coarse_sends
        self.atomic_broadcasts = atomic_broadcasts

    # -- state helpers ---------------------------------------------------
    def _initial_core(self):
        caches = tuple((0, False, False, 0) for _ in range(self.n))
        mem = (self.T, True, 0)
        net = ()
        wants = tuple(None for _ in range(self.n))
        return caches, mem, net, wants

    # -- shared transitions ----------------------------------------------
    def _want_transitions(self, state, make):
        caches, mem, net, wants = state[:4]
        out = []
        for i in range(self.n):
            if wants[i] is None:
                for op in ("r", "w"):
                    nw = wants[:i] + (op,) + wants[i + 1:]
                    out.append((f"want_{op}{i}", make(state, wants=nw)))
        return out

    def _transfer_transitions(self, state, make):
        """Nondeterministic performance policy: any legal token movement."""
        caches, mem, net, wants = state[:4]
        out = []
        if len(net) >= self.net_cap:
            pass
        else:
            for i, cache in enumerate(caches):
                ctok, cown, cval, cdata = cache
                if ctok == 0:
                    continue
                for give in ((ctok,) if self.coarse_sends else sorted({1, ctok})):
                    for with_owner in (sorted({False, cown}) if give < ctok else (cown,)):
                        ncache, value = _take(cache, give, with_owner)
                        if with_owner and value is None:
                            continue
                        msg_val = value if (with_owner or cval) else None
                        for dst in list(range(self.n)) + [MEM]:
                            if dst == i:
                                continue
                            msg = ("tok", dst, give, with_owner, msg_val)
                            nc = caches[:i] + (ncache,) + caches[i + 1:]
                            out.append((
                                f"send{i}->{dst}",
                                make(state, caches=nc, net=_add(net, msg)),
                            ))
            # Memory responds (nondeterministically) with one or all tokens.
            mtok, mown, mval = mem
            if mtok > 0:
                for give in ((mtok,) if self.coarse_sends else sorted({1, mtok})):
                    with_owner = mown and give == mtok
                    for dst in range(self.n):
                        msg = ("tok", dst, give, with_owner,
                               mval if (mown or with_owner) else None)
                        nmem = (mtok - give, mown and not with_owner, mval)
                        out.append((
                            f"mem->{dst}",
                            make(state, mem=nmem, net=_add(net, msg)),
                        ))
        # Deliveries.
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] != "tok":
                continue
            _kind, dst, tokens, owner, value = msg
            nnet = _remove(net, msg)
            if dst == MEM:
                mtok, mown, mval = mem
                nmem = (mtok + tokens, mown or owner, value if owner else mval)
                out.append(("deliver_mem", make(state, mem=nmem, net=nnet)))
            else:
                nc = list(caches)
                nc[dst] = _absorb(caches[dst], tokens, owner, value)
                out.append((f"deliver{dst}", make(state, caches=tuple(nc), net=nnet)))
        return out

    def _can_complete(self, state, i) -> bool:
        """Hook: models may gate completion (e.g. channel back-pressure)."""
        return True

    def _complete_transitions(self, state, make, on_complete=None):
        caches, mem, net, wants = state[:4]
        out = []
        for i in range(self.n):
            if not self._can_complete(state, i):
                continue
            ctok, cown, cval, cdata = caches[i]
            if wants[i] == "r" and ctok >= 1 and cval:
                nw = wants[:i] + (None,) + wants[i + 1:]
                ns = make(state, wants=nw)
                if on_complete is not None:
                    ns = on_complete(ns, i)
                out.append((f"read{i}", ns))
            elif wants[i] == "w" and ctok == self.T:
                ncache = (ctok, True, True, (cdata + 1) % self.D)
                nc = caches[:i] + (ncache,) + caches[i + 1:]
                nw = wants[:i] + (None,) + wants[i + 1:]
                ns = make(state, caches=nc, wants=nw)
                if on_complete is not None:
                    ns = on_complete(ns, i)
                out.append((f"write{i}", ns))
        return out

    # -- invariants --------------------------------------------------------
    def check_invariants(self, state) -> None:
        caches, mem, net, wants = state[:4]
        total = mem[0]
        owners = 1 if mem[1] else 0
        owner_value = mem[2] if mem[1] else None
        for tok, own, valid, value in caches:
            total += tok
            if own:
                owners += 1
                owner_value = value
                if not valid:
                    raise VerificationError("owner without valid data")
            if valid and tok == 0:
                raise VerificationError("valid data without tokens")
        for msg in net:
            if msg[0] == "tok":
                total += msg[2]
                if msg[3]:
                    owners += 1
                    owner_value = msg[4]
        if total != self.T:
            raise VerificationError(f"token conservation broken: {total} != {self.T}")
        if owners != 1:
            raise VerificationError(f"{owners} owner tokens")
        for tok, own, valid, value in caches:
            if valid and tok >= 1 and value != owner_value:
                raise VerificationError(
                    f"stale reader: {value} != owner {owner_value} "
                    "(single-writer/multi-reader violated)"
                )


class TokenSafetyModel(_TokenBase):
    """Token counting alone — verifies safety for ANY performance policy."""

    name = "TokenCMP-safety"

    def initial_states(self):
        return [self._initial_core()]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None):
        c, m, n, w = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
        )

    def transitions(self, state):
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make)
        return out

    def is_quiescent(self, state):
        _caches, _mem, net, wants = state
        return not net and all(w is None for w in wants)

    def canonicalize(self, state):
        """Processors are fully symmetric in the safety model: fold each
        state onto the lexicographically smallest processor relabeling
        (the paper's symmetry-reduction technique)."""
        return min((_permute_core(state, perm) for perm in _permutations(self.n)), key=repr)


class TokenDstModel(_TokenBase):
    """Substrate with distributed-activation persistent requests.

    Extends the base state with persistent-request tables at every site
    (both caches and memory) and activate/deactivate messages:

      tables = per site, per proc: 0 absent | (1, read, marked)
      pr     = per proc: None | 'req' (persistent request outstanding)
    """

    name = "TokenCMP-dst"

    def initial_states(self):
        caches, mem, net, wants = self._initial_core()
        tables = tuple(tuple(0 for _ in range(self.n)) for _ in range(self.n + 1))
        pr = tuple(None for _ in range(self.n))
        return [(caches, mem, net, wants, tables, pr)]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None, tables=None, pr=None):
        c, m, n, w, t, p = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
            tables if tables is not None else t,
            pr if pr is not None else p,
        )

    # Site indexes: 0..n-1 = caches, n = memory.
    def _active(self, table):
        """Highest-priority (lowest proc id) present entry at one site."""
        for proc in range(self.n):
            if table[proc] != 0:
                return proc, table[proc][1]
        return None

    def transitions(self, state):
        caches, mem, net, wants, tables, pr = state
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make, self._on_complete)

        # Issue a persistent request (gated by the local marking rule).
        for i in range(self.n):
            if wants[i] is None or pr[i] is not None:
                continue
            if any(e != 0 and e[2] for e in tables[i]):
                continue  # wave rule: marked entries block re-issue
            read = wants[i] == "r"
            ntables = list(tables)
            npr = pr[:i] + ("req",) + pr[i + 1:]
            if self.atomic_broadcasts:
                for site in range(self.n + 1):
                    ntables[site] = _set_entry(tables[site], i, (1, read, False))
                out.append((
                    f"persist{i}",
                    self._make(state, tables=tuple(ntables), pr=npr),
                ))
            else:
                ntables[i] = _set_entry(tables[i], i, (1, read, False))
                nnet = net
                for site in range(self.n + 1):
                    if site != i:
                        nnet = _add(nnet, ("act", site, i, read))
                out.append((
                    f"persist{i}",
                    self._make(state, net=nnet, tables=tuple(ntables), pr=npr),
                ))

        # Deliver activates/deactivates (per-site message mode only).
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] == "act":
                _k, site, proc, read = msg
                ntables = list(tables)
                ntables[site] = _set_entry(tables[site], proc, (1, read, False))
                out.append((
                    f"act@{site}",
                    self._make(state, net=_remove(net, msg), tables=tuple(ntables)),
                ))
            elif msg[0] == "deact":
                _k, site, proc = msg
                ntables = list(tables)
                ntables[site] = _set_entry(tables[site], proc, 0)
                out.append((
                    f"deact@{site}",
                    self._make(state, net=_remove(net, msg), tables=tuple(ntables)),
                ))

        # Forward tokens to the active persistent request at each site.
        if len(net) < self.net_cap:
            for site in range(self.n):
                act = self._active(tables[site])
                if act is None or act[0] == site:
                    continue
                proc, read = act
                ctok, cown, cval, cdata = caches[site]
                if ctok == 0:
                    continue
                if read:
                    # All-but-one; a lone owner token moves whole (with data).
                    give = 1 if (cown and ctok == 1) else ctok - 1
                else:
                    give = ctok
                if give <= 0:
                    continue
                ncache, value = _take(caches[site], give, cown)
                msg = ("tok", proc, give, cown, value if (cown or cval) else None)
                nc = caches[:site] + (ncache,) + caches[site + 1:]
                out.append((
                    f"fwd{site}->{proc}",
                    self._make(state, caches=nc, net=_add(net, msg)),
                ))
            act = self._active(tables[self.n])
            if act is not None:
                proc, read = act
                mtok, mown, mval = mem
                give = mtok if not read else (mtok if mown else max(0, mtok - 1))
                if mtok > 0 and give > 0:
                    with_owner = mown and give == mtok
                    msg = ("tok", proc, give, with_owner, mval if mown else None)
                    nmem = (mtok - give, mown and not with_owner, mval)
                    out.append((
                        f"fwdmem->{proc}",
                        self._make(state, mem=nmem, net=_add(net, msg)),
                    ))
        return out

    def _on_complete(self, state, i):
        """Completion under an outstanding persistent request deactivates it:
        remove the local entry, mark the local wave, broadcast deactivates."""
        caches, mem, net, wants, tables, pr = state
        if pr[i] is None:
            return state
        ntables = list(tables)
        local = _set_entry(tables[i], i, 0)
        local = tuple(
            (1, e[1], True) if e != 0 else 0 for e in local
        )
        ntables[i] = local
        npr = pr[:i] + (None,) + pr[i + 1:]
        if self.atomic_broadcasts:
            for site in range(self.n + 1):
                if site != i:
                    ntables[site] = _set_entry(ntables[site], i, 0)
            return self._make(state, tables=tuple(ntables), pr=npr)
        nnet = net
        for site in range(self.n + 1):
            if site != i:
                nnet = _add(nnet, ("deact", site, i))
        return self._make(state, net=nnet, tables=tuple(ntables), pr=npr)

    def is_quiescent(self, state):
        caches, mem, net, wants, tables, pr = state
        return (
            not net
            and all(w is None for w in wants)
            and all(e == 0 for t in tables for e in t)
            and all(p is None for p in pr)
        )


class TokenArbModel(_TokenBase):
    """Substrate with arbiter-based persistent request activation.

    The arbiter (at memory) fair-queues requests and activates one at a
    time; sites record only the single active request.  Control messages
    between a processor and the arbiter travel on a per-processor FIFO
    channel — matching real implementations, where requests and
    deactivations share an ordered path.  (Checking an early fully
    unordered version of this model produced a counterexample: a
    deactivation reordered around its own request leaves a stale request
    that activates with nobody to deactivate it.  See EXPERIMENTS.md.)

      site_act = per site: None | (proc, read)
      arb      = (queue tuple of (proc, read), active or None)
      chan     = per proc FIFO to the arbiter: ('req', read) | ('deact',)
      pr       = per proc: None | 'req'
    """

    name = "TokenCMP-arb"

    def initial_states(self):
        caches, mem, net, wants = self._initial_core()
        site_act = tuple(None for _ in range(self.n + 1))
        arb = ((), None)
        chan = tuple(() for _ in range(self.n))
        pr = tuple(None for _ in range(self.n))
        return [(caches, mem, net, wants, site_act, arb, chan, pr)]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None, site_act=None,
              arb=None, chan=None, pr=None):
        c, m, n, w, s, a, ch, p = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
            site_act if site_act is not None else s,
            arb if arb is not None else a,
            chan if chan is not None else ch,
            pr if pr is not None else p,
        )

    def transitions(self, state):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make, self._on_complete)

        queue, active = arb
        # Issue a persistent request (FIFO channel to the home arbiter;
        # channel length is capped at 2, modelling queue back-pressure —
        # and keeping the state space finite).
        for i in range(self.n):
            if wants[i] is not None and pr[i] is None and len(chan[i]) < 2:
                nchan = _set_entry(chan, i, chan[i] + (("req", wants[i] == "r"),))
                npr = pr[:i] + ("req",) + pr[i + 1:]
                out.append((f"persist{i}", self._make(state, chan=nchan, pr=npr)))

        # Arbiter consumes channel heads.
        for i in range(self.n):
            if not chan[i]:
                continue
            head, rest = chan[i][0], chan[i][1:]
            nchan = _set_entry(chan, i, rest)
            if head[0] == "req":
                narb = (queue + ((i, head[1]),), active)
                out.append((f"arb_enqueue{i}", self._make(
                    state, chan=nchan, arb=narb)))
            else:  # deactivation from processor i
                if active is not None and active[0] == i:
                    if self.atomic_broadcasts:
                        nsa = tuple(None for _ in range(self.n + 1))
                        out.append((f"arb_deactivate{i}", self._make(
                            state, chan=nchan, site_act=nsa, arb=(queue, None))))
                    else:
                        nnet = net
                        for site in range(self.n + 1):
                            nnet = _add(nnet, ("clear", site))
                        out.append((f"arb_deactivate{i}", self._make(
                            state, chan=nchan, net=nnet, arb=(queue, None))))
                else:
                    # Request was satisfied by stray tokens while still
                    # queued: cancel it before it ever activates.
                    for qi, entry in enumerate(queue):
                        if entry[0] == i:
                            nq = queue[:qi] + queue[qi + 1:]
                            out.append((f"arb_cancel{i}", self._make(
                                state, chan=nchan, arb=(nq, active))))
                            break

        # Per-site activation delivery (message mode only).
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] == "act":
                _k, site, proc, read = msg
                nsa = site_act[:site] + ((proc, read),) + site_act[site + 1:]
                out.append((f"act@{site}", self._make(
                    state, net=_remove(net, msg), site_act=nsa)))
            elif msg[0] == "clear":
                _k, site = msg
                nsa = site_act[:site] + (None,) + site_act[site + 1:]
                out.append((f"clear@{site}", self._make(
                    state, net=_remove(net, msg), site_act=nsa)))

        if active is None and queue:
            (proc, read), rest = queue[0], queue[1:]
            if self.atomic_broadcasts:
                nsa = tuple((proc, read) for _ in range(self.n + 1))
                out.append(("arb_activate", self._make(
                    state, site_act=nsa, arb=(rest, (proc, read)))))
            else:
                nnet = net
                for site in range(self.n + 1):
                    nnet = _add(nnet, ("act", site, proc, read))
                out.append(("arb_activate", self._make(
                    state, net=nnet, arb=(rest, (proc, read)))))

        # Sites forward tokens to the recorded active request.
        if len(net) < self.net_cap:
            for site in range(self.n):
                if site_act[site] is None or site_act[site][0] == site:
                    continue
                proc, read = site_act[site]
                ctok, cown, cval, cdata = caches[site]
                if ctok == 0:
                    continue
                if read:
                    give = 1 if (cown and ctok == 1) else ctok - 1
                else:
                    give = ctok
                if give <= 0:
                    continue
                ncache, value = _take(caches[site], give, cown)
                msg = ("tok", proc, give, cown, value if (cown or cval) else None)
                nc = caches[:site] + (ncache,) + caches[site + 1:]
                out.append((f"fwd{site}->{proc}",
                            self._make(state, caches=nc, net=_add(net, msg))))
            if site_act[self.n] is not None:
                proc, read = site_act[self.n]
                mtok, mown, mval = mem
                give = mtok if not read else (mtok if mown else max(0, mtok - 1))
                if mtok > 0 and give > 0:
                    with_owner = mown and give == mtok
                    msg = ("tok", proc, give, with_owner, mval if mown else None)
                    nmem = (mtok - give, mown and not with_owner, mval)
                    out.append((f"fwdmem->{proc}",
                                self._make(state, mem=nmem, net=_add(net, msg))))
        return out

    def _can_complete(self, state, i) -> bool:
        # Channel back-pressure: a processor with an outstanding persistent
        # request retires only when its arbiter channel has drained (the
        # deactivation needs the slot).  Keeps channels - and the state
        # space - small without losing any interleaving that matters.
        caches, mem, net, wants, site_act, arb, chan, pr = state
        return pr[i] is None or not chan[i]

    def _on_complete(self, state, i):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        if pr[i] is None:
            return state
        npr = pr[:i] + (None,) + pr[i + 1:]
        nchan = _set_entry(chan, i, chan[i] + (("deact",),))
        return self._make(state, chan=nchan, pr=npr)

    def is_quiescent(self, state):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        return (
            not net
            and all(w is None for w in wants)
            and all(s is None for s in site_act)
            and arb == ((), None)
            and all(not c for c in chan)
            and all(p is None for p in pr)
        )

    def canonicalize(self, state):
        """The arbiter treats processors uniformly (FIFO, no priorities),
        so processor relabeling is a sound symmetry reduction here —
        unlike the dst model, whose fixed priorities break it."""
        return min(
            (self._permute(state, perm) for perm in _permutations(self.n)),
            key=repr,
        )

    def _permute(self, state, perm):
        caches, mem, net, wants, site_act, arb, chan, pr = _permute_core(state, perm)
        queue, active = arb
        nqueue = tuple((perm[p], r) for p, r in queue)
        nactive = (perm[active[0]], active[1]) if active is not None else None
        nsa = [None] * (self.n + 1)
        for old in range(self.n):
            entry = site_act[old]
            nsa[perm[old]] = (perm[entry[0]], entry[1]) if entry is not None else None
        mem_entry = site_act[self.n]
        nsa[self.n] = (perm[mem_entry[0]], mem_entry[1]) if mem_entry is not None else None
        nchan = [None] * self.n
        npr = [None] * self.n
        for old in range(self.n):
            nchan[perm[old]] = chan[old]
            npr[perm[old]] = pr[old]
        return (caches, mem, net, wants, tuple(nsa), (nqueue, nactive),
                tuple(nchan), tuple(npr))


# ---------------------------------------------------------------------------
# Multiset helpers for the in-flight message pool (unordered network).
# ---------------------------------------------------------------------------
def _add(net: Tuple, msg) -> Tuple:
    return tuple(sorted(net + (msg,), key=repr))


def _remove(net: Tuple, msg) -> Tuple:
    lst = list(net)
    lst.remove(msg)
    return tuple(lst)


def _set_entry(table: Tuple, proc: int, entry) -> Tuple:
    return table[:proc] + (entry,) + table[proc + 1:]


# ---------------------------------------------------------------------------
# Symmetry reduction helpers (processor permutations).
# ---------------------------------------------------------------------------
def _permutations(n: int):
    import itertools

    return list(itertools.permutations(range(n)))


def _permute_msg(msg, perm):
    if msg[0] == "tok":
        _k, dst, tokens, owner, value = msg
        if dst != MEM:
            dst = perm[dst]
        return ("tok", dst, tokens, owner, value)
    return msg


def _permute_core(state, perm):
    """Relabel processors of a (caches, mem, net, wants) state."""
    caches, mem, net, wants = state[:4]
    ncaches = [None] * len(caches)
    nwants = [None] * len(wants)
    for old, new in enumerate(perm):
        ncaches[new] = caches[old]
        nwants[new] = wants[old]
    nnet = tuple(sorted((_permute_msg(m, perm) for m in net), key=repr))
    return (tuple(ncaches), mem, nnet, tuple(nwants)) + tuple(state[4:])
