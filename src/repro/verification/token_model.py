"""Down-scaled models of the TokenCMP correctness substrate (Section 5).

Four models, mirroring the paper's verification targets:

* :class:`TokenSafetyModel` — token counting only, no starvation
  prevention ("TokenCMP-safety"): used to verify safety cheaply.
* :class:`TokenDstModel` — adds persistent requests with **distributed
  activation** (tables at every site, fixed priority, marking rule).
* :class:`TokenArbModel` — persistent requests with the **arbiter-based**
  activation mechanism (fair FIFO at the home arbiter).
* :class:`TokenRecreateModel` — token counting plus the **recreation
  recovery tier**: an adversary destroys in-flight carriers and crashes
  caches, and the home memory (ruler of tokens) bumps a per-block epoch,
  collects surrender acks and reconstitutes the full token set.

Standard down-scaling is applied (paper Section 5): one block, two
processor caches plus memory, a small token count, values from a 2-value
data-independent domain, and a small bound on in-flight messages.  The
performance policy is left completely nondeterministic: any cache may
spontaneously send any legal combination of tokens anywhere, which means
a successful check covers *every* performance policy, hierarchical ones
included — the paper's key verification argument.

State encoding (hashable tuples):
  cache  = (tokens, owner, valid, value)
  mem    = (tokens, owner, value)
  net    = sorted tuple of messages
  wants  = per-proc pending operation: None | 'r' | 'w'
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import VerificationError
from repro.verification.checker import Model

MEM = "mem"


def _absorb(cache, tokens, owner, value):
    ctok, cown, cval, cdata = cache
    ntok = ctok + tokens
    nown = cown or owner
    if value is not None:
        return (ntok, nown, True, value)
    return (ntok, nown, cval if ntok > 0 else False, cdata if ntok > 0 else 0)


def _take(cache, tokens, with_owner):
    ctok, cown, cval, cdata = cache
    rest = ctok - tokens
    value = cdata if (with_owner or cval) else None
    if rest == 0:
        return (0, False, False, 0), value
    return (rest, cown and not with_owner, cval, cdata), value


class _TokenBase(Model):
    """Shared mechanics: token transfers, memory, invariants."""

    def __init__(self, n_caches: int = 2, total_tokens: int = 3, values: int = 2,
                 net_cap: int = 2, coarse_sends: bool = False,
                 atomic_broadcasts: bool = False):
        self.n = n_caches
        self.T = total_tokens
        self.D = values
        self.net_cap = net_cap
        # Down-scaling levers: with coarse_sends the nondeterministic policy
        # moves whole token holdings (the shape transient responses take);
        # with atomic_broadcasts persistent activates/deactivates update all
        # tables in one step (the atomic-broadcast abstraction).  Both keep
        # the persistent-request models' state spaces tractable.
        self.coarse_sends = coarse_sends
        self.atomic_broadcasts = atomic_broadcasts

    # -- state helpers ---------------------------------------------------
    def _initial_core(self):
        caches = tuple((0, False, False, 0) for _ in range(self.n))
        mem = (self.T, True, 0)
        net = ()
        wants = tuple(None for _ in range(self.n))
        return caches, mem, net, wants

    # -- shared transitions ----------------------------------------------
    def _want_transitions(self, state, make):
        caches, mem, net, wants = state[:4]
        out = []
        for i in range(self.n):
            if wants[i] is None:
                for op in ("r", "w"):
                    nw = wants[:i] + (op,) + wants[i + 1:]
                    out.append((f"want_{op}{i}", make(state, wants=nw)))
        return out

    def _transfer_transitions(self, state, make):
        """Nondeterministic performance policy: any legal token movement."""
        caches, mem, net, wants = state[:4]
        out = []
        if len(net) >= self.net_cap:
            pass
        else:
            for i, cache in enumerate(caches):
                ctok, cown, cval, cdata = cache
                if ctok == 0:
                    continue
                for give in ((ctok,) if self.coarse_sends else sorted({1, ctok})):
                    for with_owner in (sorted({False, cown}) if give < ctok else (cown,)):
                        ncache, value = _take(cache, give, with_owner)
                        if with_owner and value is None:
                            continue
                        msg_val = value if (with_owner or cval) else None
                        for dst in list(range(self.n)) + [MEM]:
                            if dst == i:
                                continue
                            msg = ("tok", dst, give, with_owner, msg_val)
                            nc = caches[:i] + (ncache,) + caches[i + 1:]
                            out.append((
                                f"send{i}->{dst}",
                                make(state, caches=nc, net=_add(net, msg)),
                            ))
            # Memory responds (nondeterministically) with one or all tokens.
            mtok, mown, mval = mem
            if mtok > 0:
                for give in ((mtok,) if self.coarse_sends else sorted({1, mtok})):
                    with_owner = mown and give == mtok
                    for dst in range(self.n):
                        msg = ("tok", dst, give, with_owner,
                               mval if (mown or with_owner) else None)
                        nmem = (mtok - give, mown and not with_owner, mval)
                        out.append((
                            f"mem->{dst}",
                            make(state, mem=nmem, net=_add(net, msg)),
                        ))
        # Deliveries.
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] != "tok":
                continue
            _kind, dst, tokens, owner, value = msg
            nnet = _remove(net, msg)
            if dst == MEM:
                mtok, mown, mval = mem
                nmem = (mtok + tokens, mown or owner, value if owner else mval)
                out.append(("deliver_mem", make(state, mem=nmem, net=nnet)))
            else:
                nc = list(caches)
                nc[dst] = _absorb(caches[dst], tokens, owner, value)
                out.append((f"deliver{dst}", make(state, caches=tuple(nc), net=nnet)))
        return out

    def _can_complete(self, state, i) -> bool:
        """Hook: models may gate completion (e.g. channel back-pressure)."""
        return True

    def _complete_transitions(self, state, make, on_complete=None):
        caches, mem, net, wants = state[:4]
        out = []
        for i in range(self.n):
            if not self._can_complete(state, i):
                continue
            ctok, cown, cval, cdata = caches[i]
            if wants[i] == "r" and ctok >= 1 and cval:
                nw = wants[:i] + (None,) + wants[i + 1:]
                ns = make(state, wants=nw)
                if on_complete is not None:
                    ns = on_complete(ns, i)
                out.append((f"read{i}", ns))
            elif wants[i] == "w" and ctok == self.T:
                ncache = (ctok, True, True, (cdata + 1) % self.D)
                nc = caches[:i] + (ncache,) + caches[i + 1:]
                nw = wants[:i] + (None,) + wants[i + 1:]
                ns = make(state, caches=nc, wants=nw)
                if on_complete is not None:
                    ns = on_complete(ns, i)
                out.append((f"write{i}", ns))
        return out

    # -- invariants --------------------------------------------------------
    def check_invariants(self, state) -> None:
        caches, mem, net, wants = state[:4]
        total = mem[0]
        owners = 1 if mem[1] else 0
        owner_value = mem[2] if mem[1] else None
        for tok, own, valid, value in caches:
            total += tok
            if own:
                owners += 1
                owner_value = value
                if not valid:
                    raise VerificationError("owner without valid data")
            if valid and tok == 0:
                raise VerificationError("valid data without tokens")
        for msg in net:
            if msg[0] == "tok":
                total += msg[2]
                if msg[3]:
                    owners += 1
                    owner_value = msg[4]
        if total != self.T:
            raise VerificationError(f"token conservation broken: {total} != {self.T}")
        if owners != 1:
            raise VerificationError(f"{owners} owner tokens")
        for tok, own, valid, value in caches:
            if valid and tok >= 1 and value != owner_value:
                raise VerificationError(
                    f"stale reader: {value} != owner {owner_value} "
                    "(single-writer/multi-reader violated)"
                )


class TokenSafetyModel(_TokenBase):
    """Token counting alone — verifies safety for ANY performance policy."""

    name = "TokenCMP-safety"

    def initial_states(self):
        return [self._initial_core()]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None):
        c, m, n, w = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
        )

    def transitions(self, state):
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make)
        return out

    def is_quiescent(self, state):
        _caches, _mem, net, wants = state
        return not net and all(w is None for w in wants)

    def canonicalize(self, state):
        """Processors are fully symmetric in the safety model: fold each
        state onto the lexicographically smallest processor relabeling
        (the paper's symmetry-reduction technique)."""
        return min((_permute_core(state, perm) for perm in _permutations(self.n)), key=repr)


class TokenDstModel(_TokenBase):
    """Substrate with distributed-activation persistent requests.

    Extends the base state with persistent-request tables at every site
    (both caches and memory) and activate/deactivate messages:

      tables = per site, per proc: 0 absent | (1, read, marked)
      pr     = per proc: None | 'req' (persistent request outstanding)
    """

    name = "TokenCMP-dst"

    def initial_states(self):
        caches, mem, net, wants = self._initial_core()
        tables = tuple(tuple(0 for _ in range(self.n)) for _ in range(self.n + 1))
        pr = tuple(None for _ in range(self.n))
        return [(caches, mem, net, wants, tables, pr)]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None, tables=None, pr=None):
        c, m, n, w, t, p = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
            tables if tables is not None else t,
            pr if pr is not None else p,
        )

    # Site indexes: 0..n-1 = caches, n = memory.
    def _active(self, table):
        """Highest-priority (lowest proc id) present entry at one site."""
        for proc in range(self.n):
            if table[proc] != 0:
                return proc, table[proc][1]
        return None

    def transitions(self, state):
        caches, mem, net, wants, tables, pr = state
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make, self._on_complete)

        # Issue a persistent request (gated by the local marking rule).
        for i in range(self.n):
            if wants[i] is None or pr[i] is not None:
                continue
            if any(e != 0 and e[2] for e in tables[i]):
                continue  # wave rule: marked entries block re-issue
            read = wants[i] == "r"
            ntables = list(tables)
            npr = pr[:i] + ("req",) + pr[i + 1:]
            if self.atomic_broadcasts:
                for site in range(self.n + 1):
                    ntables[site] = _set_entry(tables[site], i, (1, read, False))
                out.append((
                    f"persist{i}",
                    self._make(state, tables=tuple(ntables), pr=npr),
                ))
            else:
                ntables[i] = _set_entry(tables[i], i, (1, read, False))
                nnet = net
                for site in range(self.n + 1):
                    if site != i:
                        nnet = _add(nnet, ("act", site, i, read))
                out.append((
                    f"persist{i}",
                    self._make(state, net=nnet, tables=tuple(ntables), pr=npr),
                ))

        # Deliver activates/deactivates (per-site message mode only).
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] == "act":
                _k, site, proc, read = msg
                ntables = list(tables)
                ntables[site] = _set_entry(tables[site], proc, (1, read, False))
                out.append((
                    f"act@{site}",
                    self._make(state, net=_remove(net, msg), tables=tuple(ntables)),
                ))
            elif msg[0] == "deact":
                _k, site, proc = msg
                ntables = list(tables)
                ntables[site] = _set_entry(tables[site], proc, 0)
                out.append((
                    f"deact@{site}",
                    self._make(state, net=_remove(net, msg), tables=tuple(ntables)),
                ))

        # Forward tokens to the active persistent request at each site.
        if len(net) < self.net_cap:
            for site in range(self.n):
                act = self._active(tables[site])
                if act is None or act[0] == site:
                    continue
                proc, read = act
                ctok, cown, cval, cdata = caches[site]
                if ctok == 0:
                    continue
                if read:
                    # All-but-one; a lone owner token moves whole (with data).
                    give = 1 if (cown and ctok == 1) else ctok - 1
                else:
                    give = ctok
                if give <= 0:
                    continue
                ncache, value = _take(caches[site], give, cown)
                msg = ("tok", proc, give, cown, value if (cown or cval) else None)
                nc = caches[:site] + (ncache,) + caches[site + 1:]
                out.append((
                    f"fwd{site}->{proc}",
                    self._make(state, caches=nc, net=_add(net, msg)),
                ))
            act = self._active(tables[self.n])
            if act is not None:
                proc, read = act
                mtok, mown, mval = mem
                give = mtok if not read else (mtok if mown else max(0, mtok - 1))
                if mtok > 0 and give > 0:
                    with_owner = mown and give == mtok
                    msg = ("tok", proc, give, with_owner, mval if mown else None)
                    nmem = (mtok - give, mown and not with_owner, mval)
                    out.append((
                        f"fwdmem->{proc}",
                        self._make(state, mem=nmem, net=_add(net, msg)),
                    ))
        return out

    def _on_complete(self, state, i):
        """Completion under an outstanding persistent request deactivates it:
        remove the local entry, mark the local wave, broadcast deactivates."""
        caches, mem, net, wants, tables, pr = state
        if pr[i] is None:
            return state
        ntables = list(tables)
        local = _set_entry(tables[i], i, 0)
        local = tuple(
            (1, e[1], True) if e != 0 else 0 for e in local
        )
        ntables[i] = local
        npr = pr[:i] + (None,) + pr[i + 1:]
        if self.atomic_broadcasts:
            for site in range(self.n + 1):
                if site != i:
                    ntables[site] = _set_entry(ntables[site], i, 0)
            return self._make(state, tables=tuple(ntables), pr=npr)
        nnet = net
        for site in range(self.n + 1):
            if site != i:
                nnet = _add(nnet, ("deact", site, i))
        return self._make(state, net=nnet, tables=tuple(ntables), pr=npr)

    def is_quiescent(self, state):
        caches, mem, net, wants, tables, pr = state
        return (
            not net
            and all(w is None for w in wants)
            and all(e == 0 for t in tables for e in t)
            and all(p is None for p in pr)
        )


class TokenArbModel(_TokenBase):
    """Substrate with arbiter-based persistent request activation.

    The arbiter (at memory) fair-queues requests and activates one at a
    time; sites record only the single active request.  Control messages
    between a processor and the arbiter travel on a per-processor FIFO
    channel — matching real implementations, where requests and
    deactivations share an ordered path.  (Checking an early fully
    unordered version of this model produced a counterexample: a
    deactivation reordered around its own request leaves a stale request
    that activates with nobody to deactivate it.  See EXPERIMENTS.md.)

      site_act = per site: None | (proc, read)
      arb      = (queue tuple of (proc, read), active or None)
      chan     = per proc FIFO to the arbiter: ('req', read) | ('deact',)
      pr       = per proc: None | 'req'
    """

    name = "TokenCMP-arb"

    def initial_states(self):
        caches, mem, net, wants = self._initial_core()
        site_act = tuple(None for _ in range(self.n + 1))
        arb = ((), None)
        chan = tuple(() for _ in range(self.n))
        pr = tuple(None for _ in range(self.n))
        return [(caches, mem, net, wants, site_act, arb, chan, pr)]

    @staticmethod
    def _make(state, caches=None, mem=None, net=None, wants=None, site_act=None,
              arb=None, chan=None, pr=None):
        c, m, n, w, s, a, ch, p = state
        return (
            caches if caches is not None else c,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
            site_act if site_act is not None else s,
            arb if arb is not None else a,
            chan if chan is not None else ch,
            pr if pr is not None else p,
        )

    def transitions(self, state):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        out = []
        out += self._want_transitions(state, self._make)
        out += self._transfer_transitions(state, self._make)
        out += self._complete_transitions(state, self._make, self._on_complete)

        queue, active = arb
        # Issue a persistent request (FIFO channel to the home arbiter;
        # channel length is capped at 2, modelling queue back-pressure —
        # and keeping the state space finite).
        for i in range(self.n):
            if wants[i] is not None and pr[i] is None and len(chan[i]) < 2:
                nchan = _set_entry(chan, i, chan[i] + (("req", wants[i] == "r"),))
                npr = pr[:i] + ("req",) + pr[i + 1:]
                out.append((f"persist{i}", self._make(state, chan=nchan, pr=npr)))

        # Arbiter consumes channel heads.
        for i in range(self.n):
            if not chan[i]:
                continue
            head, rest = chan[i][0], chan[i][1:]
            nchan = _set_entry(chan, i, rest)
            if head[0] == "req":
                narb = (queue + ((i, head[1]),), active)
                out.append((f"arb_enqueue{i}", self._make(
                    state, chan=nchan, arb=narb)))
            else:  # deactivation from processor i
                if active is not None and active[0] == i:
                    if self.atomic_broadcasts:
                        nsa = tuple(None for _ in range(self.n + 1))
                        out.append((f"arb_deactivate{i}", self._make(
                            state, chan=nchan, site_act=nsa, arb=(queue, None))))
                    else:
                        nnet = net
                        for site in range(self.n + 1):
                            nnet = _add(nnet, ("clear", site))
                        out.append((f"arb_deactivate{i}", self._make(
                            state, chan=nchan, net=nnet, arb=(queue, None))))
                else:
                    # Request was satisfied by stray tokens while still
                    # queued: cancel it before it ever activates.
                    for qi, entry in enumerate(queue):
                        if entry[0] == i:
                            nq = queue[:qi] + queue[qi + 1:]
                            out.append((f"arb_cancel{i}", self._make(
                                state, chan=nchan, arb=(nq, active))))
                            break

        # Per-site activation delivery (message mode only).
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            if msg[0] == "act":
                _k, site, proc, read = msg
                nsa = site_act[:site] + ((proc, read),) + site_act[site + 1:]
                out.append((f"act@{site}", self._make(
                    state, net=_remove(net, msg), site_act=nsa)))
            elif msg[0] == "clear":
                _k, site = msg
                nsa = site_act[:site] + (None,) + site_act[site + 1:]
                out.append((f"clear@{site}", self._make(
                    state, net=_remove(net, msg), site_act=nsa)))

        if active is None and queue:
            (proc, read), rest = queue[0], queue[1:]
            if self.atomic_broadcasts:
                nsa = tuple((proc, read) for _ in range(self.n + 1))
                out.append(("arb_activate", self._make(
                    state, site_act=nsa, arb=(rest, (proc, read)))))
            else:
                nnet = net
                for site in range(self.n + 1):
                    nnet = _add(nnet, ("act", site, proc, read))
                out.append(("arb_activate", self._make(
                    state, net=nnet, arb=(rest, (proc, read)))))

        # Sites forward tokens to the recorded active request.
        if len(net) < self.net_cap:
            for site in range(self.n):
                if site_act[site] is None or site_act[site][0] == site:
                    continue
                proc, read = site_act[site]
                ctok, cown, cval, cdata = caches[site]
                if ctok == 0:
                    continue
                if read:
                    give = 1 if (cown and ctok == 1) else ctok - 1
                else:
                    give = ctok
                if give <= 0:
                    continue
                ncache, value = _take(caches[site], give, cown)
                msg = ("tok", proc, give, cown, value if (cown or cval) else None)
                nc = caches[:site] + (ncache,) + caches[site + 1:]
                out.append((f"fwd{site}->{proc}",
                            self._make(state, caches=nc, net=_add(net, msg))))
            if site_act[self.n] is not None:
                proc, read = site_act[self.n]
                mtok, mown, mval = mem
                give = mtok if not read else (mtok if mown else max(0, mtok - 1))
                if mtok > 0 and give > 0:
                    with_owner = mown and give == mtok
                    msg = ("tok", proc, give, with_owner, mval if mown else None)
                    nmem = (mtok - give, mown and not with_owner, mval)
                    out.append((f"fwdmem->{proc}",
                                self._make(state, mem=nmem, net=_add(net, msg))))
        return out

    def _can_complete(self, state, i) -> bool:
        # Channel back-pressure: a processor with an outstanding persistent
        # request retires only when its arbiter channel has drained (the
        # deactivation needs the slot).  Keeps channels - and the state
        # space - small without losing any interleaving that matters.
        caches, mem, net, wants, site_act, arb, chan, pr = state
        return pr[i] is None or not chan[i]

    def _on_complete(self, state, i):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        if pr[i] is None:
            return state
        npr = pr[:i] + (None,) + pr[i + 1:]
        nchan = _set_entry(chan, i, chan[i] + (("deact",),))
        return self._make(state, chan=nchan, pr=npr)

    def is_quiescent(self, state):
        caches, mem, net, wants, site_act, arb, chan, pr = state
        return (
            not net
            and all(w is None for w in wants)
            and all(s is None for s in site_act)
            and arb == ((), None)
            and all(not c for c in chan)
            and all(p is None for p in pr)
        )

    def canonicalize(self, state):
        """The arbiter treats processors uniformly (FIFO, no priorities),
        so processor relabeling is a sound symmetry reduction here —
        unlike the dst model, whose fixed priorities break it."""
        return min(
            (self._permute(state, perm) for perm in _permutations(self.n)),
            key=repr,
        )

    def _permute(self, state, perm):
        caches, mem, net, wants, site_act, arb, chan, pr = _permute_core(state, perm)
        queue, active = arb
        nqueue = tuple((perm[p], r) for p, r in queue)
        nactive = (perm[active[0]], active[1]) if active is not None else None
        nsa = [None] * (self.n + 1)
        for old in range(self.n):
            entry = site_act[old]
            nsa[perm[old]] = (perm[entry[0]], entry[1]) if entry is not None else None
        mem_entry = site_act[self.n]
        nsa[self.n] = (perm[mem_entry[0]], mem_entry[1]) if mem_entry is not None else None
        nchan = [None] * self.n
        npr = [None] * self.n
        for old in range(self.n):
            nchan[perm[old]] = chan[old]
            npr[perm[old]] = pr[old]
        return (caches, mem, net, wants, tuple(nsa), (nqueue, nactive),
                tuple(nchan), tuple(npr))


class TokenRecreateModel(_TokenBase):
    """Safety model of the token-recreation recovery tier.

    Extends the safety model's state with the recovery machinery:

      ceps  = per-cache known recreation epoch
      epoch = memory's current epoch
      rec   = None, or the frozenset of caches that have acked the
              in-progress recreation
      lost  = (tokens, owner) destroyed in the *current* epoch (the
              model's recovery ledger)

    Only epoch *comparisons* matter, so :meth:`canonicalize` rebases every
    stamp relative to memory's current epoch (and merges stale carrier
    stamps older than two epochs, which behave identically everywhere).
    That folds an unbounded sequence of recreations into a finite state
    space without capping the epoch counter.

    Token carriers are stamped with the sender's epoch; stale-epoch
    carriers are discarded on arrival everywhere.  The adversary may
    destroy any in-flight carrier (``lose``) or wipe any cache's soft
    state (``crash``) at any time — recreation control messages are never
    lost, matching the injector's never-drop clamp for the recreation
    message class.  Memory sends nothing while a recreation is active
    (the implementation's ``_on_transient``/``_forward_check`` guards);
    completion requires surrender acks from *every* cache, which is the
    safety argument: no cache can still absorb a pre-bump carrier after
    memory reconstitutes the full set.

    The invariant is the epoch-aware conservation check: current-epoch
    live tokens plus the ledger deficit equal ``T`` with exactly one
    owner, relaxed to structural checks while a recreation is in flight —
    exactly mirroring ``repro.core.tokens.check_conservation``.
    """

    name = "TokenCMP-recreate"

    FIELDS = ("caches", "mem", "net", "wants", "ceps", "epoch", "rec", "lost")

    def __init__(self, n_caches: int = 2, total_tokens: int = 3, values: int = 2,
                 net_cap: int = 2):
        super().__init__(n_caches, total_tokens, values, net_cap,
                         coarse_sends=True, atomic_broadcasts=False)

    def initial_states(self):
        caches, mem, net, wants = self._initial_core()
        ceps = tuple(0 for _ in range(self.n))
        return [(caches, mem, net, wants, ceps, 0, None, (0, False))]

    def _mk(self, state, **kw):
        record = dict(zip(self.FIELDS, state))
        record.update(kw)
        return tuple(record[f] for f in self.FIELDS)

    def transitions(self, state):
        caches, mem, net, wants, ceps, epoch, rec, lost = state
        mk = lambda s, **kw: self._mk(s, **kw)  # noqa: E731
        out = []
        out += self._want_transitions(state, mk)
        out += self._complete_transitions(state, mk)

        # Nondeterministic performance policy, epoch-stamped carriers.
        if len(net) < self.net_cap:
            for i, cache in enumerate(caches):
                ctok, cown, cval, _cdata = cache
                if ctok == 0:
                    continue
                ncache, value = _take(cache, ctok, cown)
                msg_val = value if (cown or cval) else None
                for dst in list(range(self.n)) + [MEM]:
                    if dst == i:
                        continue
                    msg = ("tok", dst, ctok, cown, msg_val, ceps[i])
                    nc = caches[:i] + (ncache,) + caches[i + 1:]
                    out.append((
                        f"send{i}->{dst}",
                        mk(state, caches=nc, net=_add(net, msg)),
                    ))
            mtok, mown, mval = mem
            if mtok > 0 and rec is None:
                # Memory is mute while recreating (the implementation's
                # guards) — otherwise it could emit current-epoch tokens
                # that survive the reconstitution and break conservation.
                for dst in range(self.n):
                    msg = ("tok", dst, mtok, mown,
                           mval if mown else None, epoch)
                    out.append((
                        f"mem->{dst}",
                        mk(state, mem=(0, False, mval), net=_add(net, msg)),
                    ))

        # Deliveries; stale-epoch carriers are discarded on arrival.
        # dict.fromkeys: dedup in sorted order for reproducibility.
        for msg in dict.fromkeys(net):
            if msg[0] != "tok":
                continue
            _k, dst, tokens, owner, value, ep = msg
            nnet = _remove(net, msg)
            if dst == MEM:
                if ep < epoch:
                    out.append(("stale_mem", mk(state, net=nnet)))
                else:
                    mtok, mown, mval = mem
                    nmem = (mtok + tokens, mown or owner,
                            value if owner else mval)
                    out.append(("deliver_mem", mk(state, mem=nmem, net=nnet)))
            elif ep < ceps[dst]:
                out.append((f"stale{dst}", mk(state, net=nnet)))
            else:
                nc = list(caches)
                nc[dst] = _absorb(caches[dst], tokens, owner, value)
                out.append((
                    f"deliver{dst}", mk(state, caches=tuple(nc), net=nnet),
                ))

        # Adversary: destroy an in-flight carrier / wipe a cache.
        for msg in dict.fromkeys(net):
            if msg[0] != "tok":
                continue
            nnet = _remove(net, msg)
            if msg[5] == epoch:
                nlost = (lost[0] + msg[2], lost[1] or msg[3])
                out.append(("lose", mk(state, net=nnet, lost=nlost)))
            else:
                out.append(("lose_stale", mk(state, net=nnet)))
        for i, (ctok, cown, _cval, _cdata) in enumerate(caches):
            if ctok == 0 and not cown:
                continue
            nc = caches[:i] + ((0, False, False, 0),) + caches[i + 1:]
            nlost = lost
            if ceps[i] == epoch:
                nlost = (lost[0] + ctok, lost[1] or cown)
            out.append((f"crash{i}", mk(state, caches=nc, lost=nlost)))

        # Recreation tier.  A starving processor escalates; memory bumps
        # the epoch and broadcasts (control messages bypass the cap and
        # are never lost, like the injector's recreation-class clamp).
        if rec is None and any(w is not None for w in wants):
            nnet = net
            for site in range(self.n):
                nnet = _add(nnet, ("epoch", site, epoch + 1))
            out.append((
                "recreate",
                mk(state, net=nnet, epoch=epoch + 1, rec=frozenset()),
            ))
        for msg in dict.fromkeys(net):
            if msg[0] == "epoch":
                _k, site, ep = msg
                nnet = _remove(net, msg)
                if ep <= ceps[site]:
                    out.append((f"epoch_dup{site}", mk(state, net=nnet)))
                    continue
                ctok, cown, cval, cdata = caches[site]
                nc = caches[:site] + ((0, False, False, 0),) + caches[site + 1:]
                nceps = ceps[:site] + (ep,) + ceps[site + 1:]
                # Surrender: local destruction plus an ack; the owner's
                # data rides on the ack (TOK_RECREATE_DATA).
                ack = ("ack", site, ep, cdata if (cown and cval) else None)
                out.append((
                    f"surrender{site}",
                    mk(state, caches=nc, net=_add(nnet, ack), ceps=nceps),
                ))
            elif msg[0] == "ack":
                _k, site, ep, value = msg
                nnet = _remove(net, msg)
                if rec is None or ep != epoch:
                    out.append(("ack_stale", mk(state, net=nnet)))
                    continue
                nmem = mem if value is None else (mem[0], mem[1], value)
                nacked = rec | {site}
                if len(nacked) == self.n:
                    # Every cache surrendered: reconstitute the full set
                    # and clear the ledger.
                    nmem = (self.T, True, nmem[2])
                    out.append((
                        "recreate_done",
                        mk(state, mem=nmem, net=nnet, rec=None,
                           lost=(0, False)),
                    ))
                else:
                    out.append((
                        f"ack{site}",
                        mk(state, mem=nmem, net=nnet, rec=nacked),
                    ))
        return out

    # ------------------------------------------------------------------
    def check_invariants(self, state) -> None:
        caches, mem, net, wants, ceps, epoch, rec, lost = state
        # Structural per-cache checks hold unconditionally.
        for tok, own, valid, _value in caches:
            if own and not valid:
                raise VerificationError("owner without valid data")
            if valid and tok == 0:
                raise VerificationError("valid data without tokens")
        if rec is not None:
            return  # conservation is relaxed while recreating
        total = mem[0] + lost[0]
        owners = (1 if mem[1] else 0) + (1 if lost[1] else 0)
        owner_value = mem[2] if mem[1] else None
        for tok, own, _valid, value in caches:
            total += tok
            if own:
                owners += 1
                owner_value = value
        for msg in net:
            if msg[0] == "tok" and msg[5] == epoch:
                total += msg[2]
                if msg[3]:
                    owners += 1
                    owner_value = msg[4]
        if total != self.T:
            raise VerificationError(
                f"token conservation broken: {total} != {self.T} "
                f"(ledger {lost[0]})"
            )
        if owners != 1:
            raise VerificationError(f"{owners} owner tokens")
        if not lost[1]:  # a destroyed owner's unwritten value is gone
            for tok, _own, valid, value in caches:
                if valid and tok >= 1 and value != owner_value:
                    raise VerificationError(
                        f"stale reader: {value} != owner {owner_value}"
                    )

    def is_quiescent(self, state):
        _caches, _mem, net, wants, _ceps, _epoch, rec, _lost = state
        return not net and all(w is None for w in wants) and rec is None

    def canonicalize(self, state):
        """Rebase all epoch stamps relative to memory's current epoch.

        ``ceps`` can lag by at most one (a new recreation starts only
        after the previous one collected every ack), so cache lag clamps
        at 1.  Carrier stamps two or more epochs old are behaviourally
        identical — stale at memory, stale at every cache — so their age
        clamps at 2.  Recreation control messages always carry the
        current epoch.  After rebasing, memory's epoch is always 0 and
        the space is closed under unbounded recreations.
        """
        caches, mem, net, wants, ceps, epoch, rec, lost = state
        if epoch == 0:
            return state
        nceps = tuple(-min(epoch - e, 1) for e in ceps)
        nnet = []
        for msg in net:
            if msg[0] == "tok":
                nnet.append(msg[:5] + (-min(epoch - msg[5], 2),))
            elif msg[0] == "epoch":
                nnet.append((msg[0], msg[1], msg[2] - epoch))
            else:  # ack
                nnet.append((msg[0], msg[1], msg[2] - epoch, msg[3]))
        return (caches, mem, tuple(sorted(nnet, key=repr)), wants,
                nceps, 0, rec, lost)


# ---------------------------------------------------------------------------
# Multiset helpers for the in-flight message pool (unordered network).
# ---------------------------------------------------------------------------
def _add(net: Tuple, msg) -> Tuple:
    return tuple(sorted(net + (msg,), key=repr))


def _remove(net: Tuple, msg) -> Tuple:
    lst = list(net)
    lst.remove(msg)
    return tuple(lst)


def _set_entry(table: Tuple, proc: int, entry) -> Tuple:
    return table[:proc] + (entry,) + table[proc + 1:]


# ---------------------------------------------------------------------------
# Symmetry reduction helpers (processor permutations).
# ---------------------------------------------------------------------------
def _permutations(n: int):
    import itertools

    return list(itertools.permutations(range(n)))


def _permute_msg(msg, perm):
    if msg[0] == "tok":
        _k, dst, tokens, owner, value = msg
        if dst != MEM:
            dst = perm[dst]
        return ("tok", dst, tokens, owner, value)
    return msg


def _permute_core(state, perm):
    """Relabel processors of a (caches, mem, net, wants) state."""
    caches, mem, net, wants = state[:4]
    ncaches = [None] * len(caches)
    nwants = [None] * len(wants)
    for old, new in enumerate(perm):
        ncaches[new] = caches[old]
        nwants[new] = wants[old]
    nnet = tuple(sorted((_permute_msg(m, perm) for m in net), key=repr))
    return (tuple(ncaches), mem, nnet, tuple(nwants)) + tuple(state[4:])
