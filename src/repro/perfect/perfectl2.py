"""PerfectL2: the unimplementable lower bound from Figure 6.

Every L1 miss hits an infinite, globally shared L2 cache with zero
coherence cost.  Coherence is maintained "by magic": stores update a
single global image and instantly invalidate every other L1's copy, with
no messages and no latency.  Only the L1 hit/miss behaviour and the fixed
L1->L2 round trip remain.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Set

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId
from repro.cpu.ops import Load, Rmw, Store, is_write
from repro.memory.cache import CacheArray
from repro.memory.dram import MemoryImage
from repro.sim.kernel import Simulator


@dataclasses.dataclass
class _PerfectEntry:
    """L1 copy under magic coherence: just a presence marker."""

    present: bool = True


class PerfectGlobalL2:
    """The shared infinite L2: one global image plus magic invalidation."""

    def __init__(self) -> None:
        self.image = MemoryImage()
        self._copies: Dict[int, Set["PerfectL1Controller"]] = {}

    def note_copy(self, addr: int, l1: "PerfectL1Controller") -> None:
        self._copies.setdefault(addr, set()).add(l1)

    def write(self, addr: int, value: int, writer: "PerfectL1Controller") -> None:
        self.image.write(addr, value)
        # Sorted by NodeId so magic invalidations land in a reproducible
        # order (raw set order is hash-randomized per process).
        for l1 in sorted(self._copies.get(addr, set()), key=lambda c: c.node):
            if l1 is not writer:
                l1.magic_invalidate(addr)
                self._copies[addr].discard(l1)


class PerfectL1Controller:
    """L1 cache whose misses always hit the perfect shared L2."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        params: SystemParams,
        stats: Stats,
        global_l2: PerfectGlobalL2,
    ):
        self.node = node
        self.sim = sim
        self.params = params
        self.stats = stats
        self.global_l2 = global_l2
        self.array = CacheArray(params.l1_size, params.l1_assoc, params.block_size, str(node))
        # L1 lookup + on-chip link + L2 bank access + link back.
        self.miss_latency_ps = (
            params.l1_latency_ps
            + 2 * params.intra_link_latency_ps
            + params.l2_latency_ps
        )

    def access(self, op, done: Callable[[int], None]) -> None:
        addr = self.params.block_of(op.addr)
        hit = self.array.lookup(addr) is not None
        latency = self.params.l1_latency_ps if hit else self.miss_latency_ps
        self.stats.bump("l1.hits" if hit else "l1.misses")
        self.sim.schedule(latency, self._complete, op, addr, done)

    def _complete(self, op, addr: int, done: Callable[[int], None]) -> None:
        if self.array.lookup(addr) is None:
            self.array.allocate(addr, _PerfectEntry())
        self.global_l2.note_copy(addr, self)
        old = self.global_l2.image.read(addr)
        if isinstance(op, Store):
            self.global_l2.write(addr, op.value, self)
        elif isinstance(op, Rmw):
            self.global_l2.write(addr, op.fn(old), self)
        done(old)

    def magic_invalidate(self, addr: int) -> None:
        self.array.deallocate(addr)
