"""Experiment harness helpers: paper-style tables plus legacy run helpers.

:class:`ResultTable` renders measured values side by side with the
paper's reference values.  The ``run_one`` / ``mean_runtime`` helpers are
**deprecated** shims over :func:`repro.exp.run_cell` — new code should
describe runs declaratively (:class:`repro.exp.Cell`) and execute them
through :class:`repro.exp.Runner`, which adds multiprocessing fan-out and
content-addressed result caching for free.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope, TrafficClass
from repro.system.machine import Machine, RunResult


def run_one(
    params: SystemParams,
    protocol: str,
    workload_factory: Callable[[SystemParams, int], object],
    seed: int = 0,
    max_events: Optional[int] = 80_000_000,
    faults=None,
    watchdog_budget_ns: Optional[float] = None,
    invariant_check_every: Optional[int] = None,
) -> RunResult:
    """Deprecated: build and run one cell, returning the raw RunResult.

    Delegates to :func:`repro.exp.run_cell` (the single
    machine-construction path).  Callable factories cannot be cached or
    parallelized — prefer ``run_cell`` with a registry workload name.
    """
    warnings.warn(
        "run_one is deprecated; use repro.exp.run_cell with a declarative "
        "Cell (registry workload name) to get caching and parallelism",
        DeprecationWarning, stacklevel=2,
    )
    from repro.exp.runner import run_cell
    from repro.exp.spec import Cell

    result = run_cell(Cell(
        protocol=protocol, workload=workload_factory, seed=seed,
        params=params, max_events=max_events, faults=faults,
        watchdog_budget_ns=watchdog_budget_ns,
        invariant_check_every=invariant_check_every,
    ))
    return result.raw


def mean_runtime(
    params: SystemParams,
    protocol: str,
    workload_factory: Callable[[SystemParams, int], object],
    seeds: Sequence[int] = (1,),
    max_events: Optional[int] = 80_000_000,
) -> float:
    """Deprecated: mean runtime (ps) over seeds via legacy callables.

    Use :meth:`repro.exp.ExperimentResult.mean_runtime` instead.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        total = 0.0
        for seed in seeds:
            total += run_one(
                params, protocol, workload_factory, seed, max_events
            ).runtime_ps
    warnings.warn(
        "mean_runtime is deprecated; use repro.exp.Runner and "
        "ExperimentResult.mean_runtime", DeprecationWarning, stacklevel=2,
    )
    return total / len(seeds)


@dataclasses.dataclass
class ResultTable:
    """Rows of measured numbers with optional paper reference values."""

    title: str
    columns: List[str]
    rows: List[List[str]] = dataclasses.field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [self.title, fmt(self.columns), fmt(["-" * w for w in widths])]
        lines += [fmt(r) for r in self.rows]
        return "\n".join(lines)

    def show(self) -> None:  # pragma: no cover - console output
        print()
        print(self.render())


def traffic_breakdown_normalized(
    results: Dict[str, RunResult], scope: Scope, baseline: str
) -> Dict[str, Dict[TrafficClass, float]]:
    """Per-protocol traffic by class, normalized to ``baseline``'s total."""
    base_total = results[baseline].meter.scope_bytes(scope)
    out: Dict[str, Dict[TrafficClass, float]] = {}
    for name, res in results.items():
        breakdown = res.meter.breakdown(scope)
        out[name] = {
            klass: (value / base_total if base_total else 0.0)
            for klass, value in breakdown.items()
        }
    return out
