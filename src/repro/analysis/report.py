"""Experiment harness helpers: paper-style result tables.

:class:`ResultTable` renders measured values side by side with the
paper's reference values.  Runs are described declaratively
(:class:`repro.exp.Cell`) and executed through :class:`repro.exp.Runner`
or :func:`repro.exp.run_cell` — the former ``run_one`` / ``mean_runtime``
shims are gone.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.interconnect.traffic import Scope, TrafficClass
from repro.system.machine import RunResult


@dataclasses.dataclass
class ResultTable:
    """Rows of measured numbers with optional paper reference values."""

    title: str
    columns: List[str]
    rows: List[List[str]] = dataclasses.field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [self.title, fmt(self.columns), fmt(["-" * w for w in widths])]
        lines += [fmt(r) for r in self.rows]
        return "\n".join(lines)

    def show(self) -> None:  # pragma: no cover - console output
        print()
        print(self.render())


def traffic_breakdown_normalized(
    results: Dict[str, RunResult], scope: Scope, baseline: str
) -> Dict[str, Dict[TrafficClass, float]]:
    """Per-protocol traffic by class, normalized to ``baseline``'s total."""
    base_total = results[baseline].meter.scope_bytes(scope)
    out: Dict[str, Dict[TrafficClass, float]] = {}
    for name, res in results.items():
        breakdown = res.meter.breakdown(scope)
        out[name] = {
            klass: (value / base_total if base_total else 0.0)
            for klass, value in breakdown.items()
        }
    return out
