"""Experiment harness helpers: run protocol x workload grids, normalize,
and print paper-style tables.

Every benchmark in ``benchmarks/`` builds on :func:`run_grid` /
:class:`ResultTable` so its output shows measured values side by side with
the paper's reference values (where the paper gives them numerically).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope, TrafficClass
from repro.system.machine import Machine, RunResult


def run_one(
    params: SystemParams,
    protocol: str,
    workload_factory: Callable[[SystemParams, int], object],
    seed: int = 0,
    max_events: Optional[int] = 80_000_000,
    faults=None,
    watchdog_budget_ns: Optional[float] = None,
    invariant_check_every: Optional[int] = None,
) -> RunResult:
    """Build a fresh machine + workload and run to completion.

    ``faults`` (a :class:`repro.faults.injector.FaultConfig`) wraps the
    interconnect in the adversarial decorator; ``watchdog_budget_ns`` arms
    the liveness watchdog; ``invariant_check_every`` turns on continuous
    token-conservation checking (token protocols only).
    """
    machine = Machine(params, protocol, seed=seed, faults=faults)
    if watchdog_budget_ns is not None:
        from repro.faults.watchdog import LivenessWatchdog

        LivenessWatchdog(machine, budget_ns=watchdog_budget_ns)
    if invariant_check_every is not None:
        from repro.faults.watchdog import InvariantMonitor

        InvariantMonitor(machine, invariant_check_every)
    workload = workload_factory(params, seed)
    return machine.run(workload, max_events=max_events)


def mean_runtime(
    params: SystemParams,
    protocol: str,
    workload_factory: Callable[[SystemParams, int], object],
    seeds: Sequence[int] = (1,),
    max_events: Optional[int] = 80_000_000,
) -> float:
    """Mean runtime (ps) over seeds — the paper's perturbed-runs analogue."""
    total = 0.0
    for seed in seeds:
        total += run_one(params, protocol, workload_factory, seed, max_events).runtime_ps
    return total / len(seeds)


@dataclasses.dataclass
class ResultTable:
    """Rows of measured numbers with optional paper reference values."""

    title: str
    columns: List[str]
    rows: List[List[str]] = dataclasses.field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [self.title, fmt(self.columns), fmt(["-" * w for w in widths])]
        lines += [fmt(r) for r in self.rows]
        return "\n".join(lines)

    def show(self) -> None:  # pragma: no cover - console output
        print()
        print(self.render())


def traffic_breakdown_normalized(
    results: Dict[str, RunResult], scope: Scope, baseline: str
) -> Dict[str, Dict[TrafficClass, float]]:
    """Per-protocol traffic by class, normalized to ``baseline``'s total."""
    base_total = results[baseline].meter.scope_bytes(scope)
    out: Dict[str, Dict[TrafficClass, float]] = {}
    for name, res in results.items():
        breakdown = res.meter.breakdown(scope)
        out[name] = {
            klass: (value / base_total if base_total else 0.0)
            for klass, value in breakdown.items()
        }
    return out
