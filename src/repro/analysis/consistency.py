"""Runtime coherence auditing: a per-location serializability checker.

The model checker (Section 5) proves the substrate provides "a serial
view of memory, in which every load returns the value of the most recent
store to the same location" — on down-scaled configurations.  This module
checks the same property *dynamically* on full-size simulations: the
machine logs every completed memory operation with its completion
timestamp, and :func:`check_per_location_serializability` verifies that,
per block, each load observed the value of the latest earlier write.

Operations complete atomically at an instant in the simulator (the cache
performs the access at permission-grant time), so the completion order is
a legitimate linearization; ties are broken by log order, which matches
execution order inside one event.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional

from repro.common.errors import VerificationError


@dataclasses.dataclass(frozen=True)
class OpRecord:
    """One completed memory operation."""

    time_ps: int
    proc: int
    kind: str  # "load" | "store" | "rmw"
    addr: int
    value_read: Optional[int]  # loads and rmws observe a value
    value_written: Optional[int]  # stores and rmws produce a value


class OperationLog:
    """Collects completed operations; attach via ``Machine.attach_audit``."""

    def __init__(self) -> None:
        self.records: List[OpRecord] = []

    def record(self, time_ps, proc, kind, addr, value_read, value_written) -> None:
        self.records.append(
            OpRecord(time_ps, proc, kind, addr, value_read, value_written)
        )

    def per_block(self) -> Dict[int, List[OpRecord]]:
        blocks: Dict[int, List[OpRecord]] = defaultdict(list)
        for rec in self.records:
            blocks[rec.addr].append(rec)
        return blocks


def check_per_location_serializability(log: OperationLog, initial_value: int = 0) -> int:
    """Verify every load saw the latest earlier write to its block.

    Returns the number of operations audited; raises
    :class:`VerificationError` with the offending history on violation.
    """
    audited = 0
    for addr, records in log.per_block().items():
        # Completion-time order (stable for ties: log order).
        history = sorted(records, key=lambda r: r.time_ps)
        current = initial_value
        for rec in history:
            if rec.kind in ("load", "rmw") and rec.value_read != current:
                context = "\n".join(
                    f"    t={r.time_ps} p{r.proc} {r.kind} "
                    f"read={r.value_read} wrote={r.value_written}"
                    for r in history[: history.index(rec) + 1][-8:]
                )
                raise VerificationError(
                    f"block {addr:#x}: p{rec.proc} {rec.kind} at t={rec.time_ps} "
                    f"read {rec.value_read}, expected {current} "
                    f"(latest earlier write)\n  recent history:\n{context}"
                )
            if rec.value_written is not None:
                current = rec.value_written
            audited += 1
    return audited


class AuditingSequencerWrapper:
    """Wraps a sequencer's L1 to log completions without protocol changes."""

    def __init__(self, inner_l1, sim, proc: int, log: OperationLog):
        self.inner = inner_l1
        self.params = inner_l1.params  # pass-through for the sequencer
        self.sim = sim
        self.proc = proc
        self.log = log

    def access(self, op, done):
        from repro.cpu.ops import Load, Rmw, Store

        def _completed(result):
            if isinstance(op, Load):
                self.log.record(self.sim.now, self.proc, "load", _block(op, self),
                                result, None)
            elif isinstance(op, Store):
                self.log.record(self.sim.now, self.proc, "store", _block(op, self),
                                None, op.value)
            else:  # Rmw observes the old value and writes fn(old)
                self.log.record(self.sim.now, self.proc, "rmw", _block(op, self),
                                result, op.fn(result))
            done(result)

        self.inner.access(op, _completed)


def _block(op, wrapper) -> int:
    return wrapper.inner.params.block_of(op.addr)


def attach_audit(machine) -> OperationLog:
    """Interpose an operation log on every sequencer of ``machine``.

    Call before ``machine.run``; afterwards pass the returned log to
    :func:`check_per_location_serializability`.
    """
    log = OperationLog()
    for seq in machine.sequencers:
        seq.l1d = AuditingSequencerWrapper(seq.l1d, machine.sim, seq.proc, log)
    return log
