"""One-shot experiment battery: everything the paper reports, in one call.

``run_battery`` executes scaled-down versions of every experiment through
the :mod:`repro.exp` engine — the same code path the benchmarks use — and
returns the rendered tables; ``python -m repro report`` writes them to a
markdown file.  Sizes are chosen for minutes, not hours — the pytest
benchmarks remain the reference harness.

Cells run through a :class:`repro.exp.Runner`, so ``jobs`` fans the grid
out across processes and repeated invocations replay from the
content-addressed result cache (identical results either way).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.analysis.report import ResultTable
from repro.common.params import SystemParams
from repro.exp.runner import Runner
from repro.exp.spec import Cell, ExperimentSpec
from repro.interconnect.traffic import Scope


def run_battery(
    scale: float = 1.0,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[ResultTable]:
    """Run the whole experiment battery; returns rendered tables.

    ``scale`` multiplies workload sizes (0.5 = half-size quick look);
    ``jobs`` / ``cache`` are forwarded to the experiment engine.
    """
    say = progress or (lambda msg: None)
    params = SystemParams()
    runner = Runner(jobs=jobs, cache=cache, cache_dir=cache_dir, progress=say)
    tables: List[ResultTable] = []

    def n(base: int) -> int:
        return max(2, round(base * scale))

    # ---- Figures 2 & 3: locking sweep --------------------------------
    say("locking sweep (Figures 2-3)")
    lock_counts = [2, 8, 32, 128, 512]
    protocols = [
        "TokenCMP-arb0", "TokenCMP-dst0", "DirectoryCMP", "DirectoryCMP-zero",
        "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred",
    ]
    lock_spec = ExperimentSpec("report-locking", tuple(
        Cell(protocol=proto, workload="locking",
             workload_kwargs={"num_locks": locks, "acquires_per_proc": n(12)},
             seed=seed, params=params, label=str(locks))
        for locks in lock_counts
        for proto in protocols
    ))
    lock_res = runner.run(lock_spec)
    runtimes: Dict = {
        (locks, proto): lock_res.cell(protocol=proto, label=str(locks)).runtime_ps
        for locks in lock_counts
        for proto in protocols
    }
    base = runtimes[(512, "DirectoryCMP")]
    t = ResultTable(
        "Locking micro-benchmark (Figures 2-3): runtime normalized to "
        "DirectoryCMP @ 512 locks", ["locks"] + protocols,
    )
    for locks in lock_counts:
        t.add(locks, *(f"{runtimes[(locks, p)] / base:.2f}" for p in protocols))
    tables.append(t)

    # ---- Table 4: barrier ---------------------------------------------
    say("barrier (Table 4)")
    barrier_res = runner.run(ExperimentSpec.grid(
        "report-barrier", protocols, ("barrier", {"phases": n(10)}),
        seeds=(seed,), params=params,
    ))
    barrier = barrier_res.runtime_grid(protocols)
    t = ResultTable(
        "Barrier micro-benchmark (Table 4): runtime normalized to DirectoryCMP",
        ["protocol", "normalized"],
    )
    for proto in protocols:
        t.add(proto, f"{barrier[proto] / barrier['DirectoryCMP']:.2f}")
    tables.append(t)

    # ---- Figure 6 + 7: commercial workloads ---------------------------
    say("commercial workloads (Figures 6-7)")
    commercial_protos = ["DirectoryCMP", "TokenCMP-dst1", "PerfectL2"]
    commercial_res = runner.run(ExperimentSpec.grid(
        "report-commercial", commercial_protos,
        [(wl, {"refs_per_proc": n(200)}) for wl in ("oltp", "apache", "specjbb")],
        seeds=(seed,), params=params,
    ))
    t6 = ResultTable(
        "Commercial workloads (Figure 6): runtime normalized to DirectoryCMP",
        ["workload"] + commercial_protos + ["dst1 speedup", "inter-CMP bytes (rel)"],
    )
    for wl_name in ("oltp", "apache", "specjbb"):
        res = commercial_res.by_protocol(commercial_protos, workload=wl_name)
        base_rt = res["DirectoryCMP"].runtime_ps
        base_traffic = res["DirectoryCMP"].scope_bytes(Scope.INTER)
        t6.add(
            wl_name,
            *(f"{res[p].runtime_ps / base_rt:.2f}" for p in commercial_protos),
            f"{base_rt / res['TokenCMP-dst1'].runtime_ps - 1:+.0%}",
            f"{res['TokenCMP-dst1'].scope_bytes(Scope.INTER) / base_traffic:.2f}",
        )
    tables.append(t6)

    # ---- Hand-off latency ----------------------------------------------
    say("hand-off latency (mechanism)")
    rounds = n(16)
    handoff_protos = ("DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst1")
    handoff_res = runner.run(ExperimentSpec.grid(
        "report-handoff", handoff_protos,
        ("pingpong", {"proc_a": 0, "proc_b": params.procs_per_chip,
                      "rounds": rounds}),
        seeds=(seed,), params=params,
    ))
    t8 = ResultTable(
        "Cross-chip sharing-miss hand-off (ns per ping-pong round)",
        ["protocol", "ns/round"],
    )
    for proto in handoff_protos:
        res = handoff_res.cell(protocol=proto)
        t8.add(proto, f"{res.runtime_ps / rounds / 1000:.0f}")
    tables.append(t8)

    # ---- Section 5: model checking -------------------------------------
    say("model checking (Section 5)")
    from repro.verification.checker import check
    from repro.verification.dir_model import DirFlatModel
    from repro.verification.token_model import TokenDstModel, TokenSafetyModel

    t5 = ResultTable(
        "Model checking (Section 5, quick configurations)",
        ["model", "states", "transitions", "result"],
    )
    for model, liveness in (
        (TokenSafetyModel(), False),
        (TokenDstModel(coarse_sends=True, atomic_broadcasts=True), True),
        (DirFlatModel(), True),
    ):
        result = check(model, max_states=1_000_000, check_liveness=liveness)
        t5.add(model.name, result.states, result.transitions, "verified")
    tables.append(t5)

    return tables


def write_report(path: str, scale: float = 1.0, seed: int = 1,
                 progress: Optional[Callable[[str], None]] = None,
                 jobs: int = 1, cache: bool = True,
                 cache_dir: Optional[str] = None) -> str:
    """Run the battery and write a markdown report; returns the text."""
    start = time.perf_counter()
    tables = run_battery(scale=scale, seed=seed, progress=progress,
                         jobs=jobs, cache=cache, cache_dir=cache_dir)
    parts = [
        "# TokenCMP reproduction report",
        "",
        f"Machine: the paper's 4 CMPs x 4 processors (seed {seed}, "
        f"scale {scale}).  Normalized numbers; see EXPERIMENTS.md for the "
        "paper-vs-measured discussion.",
        "",
    ]
    for table in tables:
        parts.append("```")
        parts.append(table.render())
        parts.append("```")
        parts.append("")
    parts.append(f"_Generated in {time.perf_counter() - start:.0f}s by "
                 "`python -m repro report`._")
    text = "\n".join(parts)
    with open(path, "w") as fh:
        fh.write(text)
    return text
