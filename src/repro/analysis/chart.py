"""Terminal-friendly ASCII charts for experiment output.

No plotting dependency is available offline, so the examples and bench
summaries render simple horizontal bar charts and line sweeps as text.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def bar_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not rows:
        return title
    peak = max(value for _label, value in rows) or 1.0
    label_w = max(len(label) for label, _v in rows)
    lines = [title]
    for label, value in rows:
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"  {label.ljust(label_w)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def sweep_chart(
    title: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    height: int = 12,
) -> str:
    """Plot several series over a shared x axis with letter markers."""
    lines = [title]
    all_vals = [v for vs in series.values() for v in vs]
    if not all_vals:
        return title
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    markers = {}
    grid = [[" "] * len(x_values) for _ in range(height)]
    for idx, (name, values) in enumerate(sorted(series.items())):
        mark = chr(ord("A") + idx)
        markers[mark] = name
        for col, value in enumerate(values):
            row = height - 1 - round((value - lo) / span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", mark) else mark
    for row_idx, row in enumerate(grid):
        level = hi - span * row_idx / (height - 1)
        lines.append(f"  {level:8.2f} |" + " ".join(row))
    lines.append(" " * 11 + "+" + "-" * (2 * len(x_values)))
    lines.append(" " * 12 + " ".join(str(x)[0] for x in x_values))
    lines.append("  x = " + ", ".join(str(x) for x in x_values))
    for mark, name in markers.items():
        lines.append(f"  {mark} = {name}" + ("   (* = overlap)" if mark == "A" else ""))
    return "\n".join(lines)
