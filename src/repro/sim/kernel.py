"""Discrete-event simulation kernel.

A minimal, deterministic event queue: events fire in (time, sequence)
order, so two events scheduled for the same picosecond fire in the order
they were scheduled.  Everything else in the simulator — networks, cache
controllers, processor threads — is built as callbacks on this kernel.

Hot-path design
---------------

The kernel is the innermost loop of every experiment, so the per-event
cost is kept to a handful of C-level operations:

* **Heap entries are flat ``[time, seq, fn, args]`` records.**
  :class:`Event` subclasses ``list`` so ``heapq`` compares entries with
  the C ``list`` comparison (time, then the unique sequence number —
  callables are never reached) instead of a Python-level ``__lt__``.
* **Cancellation is lazy.**  ``Event.cancel`` blanks the callback slot
  and fixes the live-event count; the dead entry stays in the heap and
  is discarded when it surfaces.  The common no-cancel path never pays
  for cancellation support beyond one ``is None`` check per event.
* **No-handle events are recycled.**  Most events in a simulation —
  message deliveries, lookup-latency hops, thread resumptions — are
  never cancelled, so their handles are never kept.  :meth:`Simulator.
  call_after` / :meth:`Simulator.call_at` schedule a single-argument
  callback as a plain ``[time, seq, fn, arg, True]`` list drawn from a
  per-simulator freelist and returned to it right after firing: the
  steady state allocates no new heap entries and no ``args`` tuples.
  The run loop tells the two shapes apart with one ``type(event) is
  list`` check (handle events are :class:`Event` instances).
* **Watchers are threshold-driven.**  Instead of a per-event
  ``events_fired % every`` scan over every registered watcher, the
  kernel keeps the next due cumulative event count per watcher and a
  single ``_watch_next`` minimum; the inner loop does one integer
  compare per event.
* **Profiler/tracer checks are hoisted.**  The profiler is read once per
  :meth:`Simulator.run` call (attach observers before running), and the
  bounds (``until`` / ``max_events``) collapse to integer compares
  against sentinels.

Observability hooks (both ``None`` by default, and free when unset):

* ``sim.tracer`` — a :class:`repro.obs.trace.Tracer`; instrumented
  components all over the machine read this attribute at event time and
  emit structured trace events only when it is set.
* ``sim.profiler`` — a :class:`repro.obs.profile.KernelProfiler`; when
  set, the run loop times every callback with ``perf_counter_ns`` and
  reports it via ``profiler.record(fn, wall_ns)``.  Attach it before
  calling :meth:`Simulator.run` — the run loop samples the hook once at
  entry.
"""

from __future__ import annotations

from heapq import heappop, heappush
# Sanctioned impurity: the opt-in profiler measures host time; it never
# feeds simulated state.  See docs/static-analysis.md.
from time import perf_counter_ns  # staticcheck: ignore[purity-import]
from typing import Any, Callable, Optional

from repro.common.errors import DeadlockError

_NEVER = float("inf")  # sentinel: compares greater than any event count/time


class Event(list):
    """Handle for a scheduled callback; supports cancellation.

    The event *is* its own heap entry: a ``[time_ps, seq, fn, args]``
    list (plus a ``sim`` back-reference for the live-event count), so
    scheduling allocates exactly one record and the heap orders entries
    with C-level list comparison.  ``seq`` is unique per simulator, so
    comparisons are always resolved by ``(time, seq)`` and never touch
    the callback.
    """

    __slots__ = ("sim",)

    # No __init__ override: entries are built with the C-level list
    # constructor (``Event((time, seq, fn, args))``) and ``schedule``
    # assigns the ``sim`` back-reference — one Python-level call fewer
    # per scheduled event.

    @property
    def time(self) -> int:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled or fired)."""
        return self[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired).

        Lazy deletion: the heap entry is not removed, only its callback
        slot is blanked — the run loop discards blank entries as they
        surface.  The simulator's live-event count is fixed up here, and
        the blank slot makes a second ``cancel`` (or a cancel after
        firing — the run loop blanks the slot too) an exact no-op.
        """
        if self[2] is None:
            return
        self[2] = None
        self[3] = None  # drop the args reference promptly
        sim = self.sim
        if sim is not None:
            sim._pending -= 1
            self.sim = None


class Simulator:
    """Deterministic discrete-event scheduler with picosecond time."""

    __slots__ = (
        "_queue", "_now", "_seq", "_pending", "events_fired",
        "_watchers", "_watch_next", "tracer", "profiler",
        "_free_events", "event_news",
    )

    def __init__(self) -> None:
        self._queue: list = []
        self._now: int = 0
        self._seq: int = 0
        self._pending: int = 0
        self.events_fired: int = 0
        self._watchers: list = []  # [every_events, fn, next_due] records
        self._watch_next = _NEVER  # min next_due over watchers
        self.tracer = None  # repro.obs.trace.Tracer (attach() sets this)
        self.profiler = None  # repro.obs.profile.KernelProfiler
        # Freelist of recycled no-handle event records (call_after /
        # call_at).  ``event_news`` counts fresh record allocations — the
        # alloc benchmarks read it; in steady state it stops growing.
        self._free_events: list = []
        self.event_news: int = 0

    def add_watcher(self, fn: Callable[[], None], every_events: int = 1024) -> None:
        """Call ``fn()`` every ``every_events`` fired events.

        Watchers piggyback on the event loop instead of scheduling their
        own events, so they cannot keep an otherwise-drained queue alive
        (``expect_drain`` still works) and they run only while the
        simulation is actually making event progress.  A watcher that
        raises aborts the run with its exception — this is how liveness
        watchdogs and invariant monitors report violations.

        The cadence is anchored to the *cumulative* ``events_fired``
        count: a watcher with ``every_events=4`` fires at counts 4, 8,
        12, ... no matter how many ``run()`` calls those counts span.
        (Register watchers between runs or from another watcher; a plain
        event callback registering one mid-run anchors to the count as of
        the last watcher flush, since the run loop counts in a local.)
        """
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        fired = self.events_fired
        next_due = fired - (fired % every_events) + every_events
        self._watchers.append([every_events, fn, next_due])
        if next_due < self._watch_next:
            self._watch_next = next_due

    def _fire_due_watchers(self) -> None:
        """Run watchers whose threshold was reached, in registration order."""
        fired = self.events_fired
        for record in self._watchers:
            if fired >= record[2]:
                record[2] += record[0]
                record[1]()
        self._watch_next = min(record[2] for record in self._watchers)

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_ps`` picoseconds; returns a handle."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ps})")
        self._seq = seq = self._seq + 1
        event = Event((self._now + delay_ps, seq, fn, args))
        event.sim = self
        self._pending += 1
        heappush(self._queue, event)
        return event

    def schedule_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute time ``time_ps`` (>= now)."""
        return self.schedule(time_ps - self._now, fn, *args)

    def call_after(self, delay_ps: int, fn: Callable[[Any], Any], arg: Any) -> None:
        """Run ``fn(arg)`` after ``delay_ps``; no handle, entry recycled.

        The no-allocation fast path for the overwhelmingly common case —
        message deliveries, lookup-latency hops, thread resumptions —
        where the caller never cancels.  The heap entry is a plain
        ``[time, seq, fn, arg, True]`` list drawn from the simulator's
        freelist and returned to it right after firing, and ``arg`` is
        stored directly (no ``args`` tuple).  Time/sequence semantics are
        identical to :meth:`schedule`, so swapping a ``schedule`` call
        site to ``call_after`` never changes simulated behaviour.
        """
        if delay_ps < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ps})")
        self._seq = seq = self._seq + 1
        free = self._free_events
        if free:
            event = free.pop()
            event[0] = self._now + delay_ps
            event[1] = seq
            event[2] = fn
            event[3] = arg
        else:
            self.event_news += 1
            event = [self._now + delay_ps, seq, fn, arg, True]
        self._pending += 1
        heappush(self._queue, event)

    def call_at(self, time_ps: int, fn: Callable[[Any], Any], arg: Any) -> None:
        """Run ``fn(arg)`` at absolute ``time_ps`` (>= now); no handle.

        Open-coded rather than delegating to :meth:`call_after`: callers
        that already computed an absolute time (message deliveries) skip
        the round-trip through a relative delay.
        """
        if time_ps < self._now:
            raise ValueError(
                f"cannot schedule in the past (t={time_ps} < now={self._now})"
            )
        self._seq = seq = self._seq + 1
        free = self._free_events
        if free:
            event = free.pop()
            event[0] = time_ps
            event[1] = seq
            event[2] = fn
            event[3] = arg
        else:
            self.event_news += 1
            event = [time_ps, seq, fn, arg, True]
        self._pending += 1
        heappush(self._queue, event)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1)).

        Maintained live — incremented on :meth:`schedule`, decremented on
        :meth:`Event.cancel` and on firing — so watchdogs and monitors can
        poll it every check interval without degrading large runs.
        """
        return self._pending

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        expect_drain: bool = False,
    ) -> int:
        """Fire events until the queue drains (or a bound is hit).

        ``until`` stops the clock at an absolute picosecond time;
        ``max_events`` bounds total events (a runaway-protocol backstop).
        With ``expect_drain`` the caller asserts the workload should finish
        by itself; hitting ``max_events`` then raises :class:`DeadlockError`.
        Returns the final simulated time.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("sim.run.begin", pending=self._pending)
        try:
            return self._run(until, max_events, expect_drain)
        finally:
            if tracer is not None:
                tracer.emit(
                    "sim.run.end",
                    events_fired=self.events_fired,
                    pending=self._pending,
                )

    def _run(
        self,
        until: Optional[int],
        max_events: Optional[int],
        expect_drain: bool,
    ) -> int:
        # Inner loop: everything variable is hoisted into locals, bounds
        # become integer compares against +inf sentinels, and the only
        # per-event costs beyond the heap pop are the blank-slot check
        # (lazy cancellation) and the watcher threshold compare.
        #
        # ``events_fired`` is tracked in a local (``total``) and written
        # back before watchers fire and in the ``finally`` — watchers are
        # the only mid-run readers.  ``_pending`` stays live per event:
        # callbacks legitimately poll ``sim.pending``.
        #
        # The common case — no clock bound, no profiler: every untraced
        # workload run — gets its own lean loop with no per-event peek
        # and no profiler check; everything else takes the generic loop.
        queue = self._queue
        pop = heappop
        profiler = self.profiler
        total = self.events_fired
        end = total + (_NEVER if max_events is None else max_events)
        free_events = self._free_events
        recycle = free_events.append
        try:
            if until is None and profiler is None:
                while queue:
                    event = pop(queue)
                    fn = event[2]
                    if fn is None:
                        continue  # cancelled: uncounted by Event.cancel
                    self._pending -= 1
                    self._now = event[0]
                    if type(event) is list:  # recyclable no-handle entry
                        fn(event[3])
                        event[2] = None
                        event[3] = None  # drop the arg reference promptly
                        recycle(event)
                    else:
                        event[2] = None  # mark fired: late cancel() no-ops
                        fn(*event[3])
                    total += 1
                    if total >= self._watch_next:
                        self.events_fired = total
                        self._fire_due_watchers()
                    if total >= end:
                        if expect_drain:
                            raise DeadlockError(
                                f"simulation did not finish within "
                                f"{max_events} events (t={self._now} ps); "
                                f"likely protocol livelock"
                            )
                        return self._now
                return self._now
            bound = _NEVER if until is None else until
            while queue:
                event = queue[0]
                when = event[0]
                if when > bound:
                    self._now = until
                    return until
                pop(queue)
                fn = event[2]
                if fn is None:
                    continue  # cancelled: already uncounted by Event.cancel
                self._pending -= 1
                self._now = when
                if type(event) is list:  # recyclable no-handle entry
                    if profiler is None:
                        fn(event[3])
                    else:
                        start_ns = perf_counter_ns()
                        fn(event[3])
                        profiler.record(fn, perf_counter_ns() - start_ns)
                    event[2] = None
                    event[3] = None
                    recycle(event)
                else:
                    event[2] = None  # mark fired so a late cancel() no-ops
                    if profiler is None:
                        fn(*event[3])
                    else:
                        start_ns = perf_counter_ns()
                        fn(*event[3])
                        profiler.record(fn, perf_counter_ns() - start_ns)
                total += 1
                if total >= self._watch_next:
                    self.events_fired = total
                    self._fire_due_watchers()
                if total >= end:
                    if expect_drain:
                        raise DeadlockError(
                            f"simulation did not finish within {max_events} "
                            f"events (t={self._now} ps); likely protocol "
                            f"livelock"
                        )
                    return self._now
            return self._now
        finally:
            self.events_fired = total
