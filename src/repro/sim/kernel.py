"""Discrete-event simulation kernel.

A minimal, deterministic event queue: events fire in (time, sequence)
order, so two events scheduled for the same picosecond fire in the order
they were scheduled.  Everything else in the simulator — networks, cache
controllers, processor threads — is built as callbacks on this kernel.

Observability hooks (both ``None`` by default, and free when unset):

* ``sim.tracer`` — a :class:`repro.obs.trace.Tracer`; instrumented
  components all over the machine read this attribute at event time and
  emit structured trace events only when it is set.
* ``sim.profiler`` — a :class:`repro.obs.profile.KernelProfiler`; when
  set, the run loop times every callback with ``perf_counter_ns`` and
  reports it via ``profiler.record(fn, wall_ns)``.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Optional

from repro.common.errors import DeadlockError


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim: Optional["Simulator"] = None  # set while pending

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        # Keep the scheduler's live-event count exact without scanning the
        # queue: the back-reference is cleared once the event pops, so a
        # cancel after firing cannot double-decrement.
        sim = self.sim
        if sim is not None:
            sim._pending -= 1
            self.sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event scheduler with picosecond time."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._pending: int = 0
        self.events_fired: int = 0
        self._watchers: list = []  # (every_events, fn) pairs
        self.tracer = None  # repro.obs.trace.Tracer (attach() sets this)
        self.profiler = None  # repro.obs.profile.KernelProfiler

    def add_watcher(self, fn: Callable[[], None], every_events: int = 1024) -> None:
        """Call ``fn()`` every ``every_events`` fired events.

        Watchers piggyback on the event loop instead of scheduling their
        own events, so they cannot keep an otherwise-drained queue alive
        (``expect_drain`` still works) and they run only while the
        simulation is actually making event progress.  A watcher that
        raises aborts the run with its exception — this is how liveness
        watchdogs and invariant monitors report violations.
        """
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        self._watchers.append((every_events, fn))

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_ps`` picoseconds; returns a handle."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ps})")
        self._seq += 1
        event = Event(self._now + delay_ps, self._seq, fn, args)
        event.sim = self
        self._pending += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute time ``time_ps`` (>= now)."""
        return self.schedule(time_ps - self._now, fn, *args)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1)).

        Maintained live — incremented on :meth:`schedule`, decremented on
        :meth:`Event.cancel` and on firing — so watchdogs and monitors can
        poll it every check interval without degrading large runs.
        """
        return self._pending

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        expect_drain: bool = False,
    ) -> int:
        """Fire events until the queue drains (or a bound is hit).

        ``until`` stops the clock at an absolute picosecond time;
        ``max_events`` bounds total events (a runaway-protocol backstop).
        With ``expect_drain`` the caller asserts the workload should finish
        by itself; hitting ``max_events`` then raises :class:`DeadlockError`.
        Returns the final simulated time.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("sim.run.begin", pending=self._pending)
        try:
            return self._run(until, max_events, expect_drain)
        finally:
            if tracer is not None:
                tracer.emit(
                    "sim.run.end",
                    events_fired=self.events_fired,
                    pending=self._pending,
                )

    def _run(
        self,
        until: Optional[int],
        max_events: Optional[int],
        expect_drain: bool,
    ) -> int:
        fired = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return self._now
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue  # already uncounted by Event.cancel
            event.sim = None
            self._pending -= 1
            self._now = event.time
            profiler = self.profiler
            if profiler is not None:
                start_ns = perf_counter_ns()
                event.fn(*event.args)
                profiler.record(event.fn, perf_counter_ns() - start_ns)
            else:
                event.fn(*event.args)
            fired += 1
            self.events_fired += 1
            if self._watchers:
                for every, watcher in self._watchers:
                    if self.events_fired % every == 0:
                        watcher()
            if max_events is not None and fired >= max_events:
                if expect_drain:
                    raise DeadlockError(
                        f"simulation did not finish within {max_events} events "
                        f"(t={self._now} ps); likely protocol livelock"
                    )
                return self._now
        return self._now
