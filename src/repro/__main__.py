"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``    — show the available protocols and workloads
* ``run``     — run one workload on one protocol, print stats
* ``sweep``   — run a workload across all protocols, print normalized runtimes
* ``verify``  — model-check the protocol models (Section 5)
* ``faults``  — run the robustness battery under an adversarial network
"""

from __future__ import annotations

import argparse
import sys

from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope
from repro.system.config import PROTOCOLS
from repro.system.machine import Machine

WORKLOADS = ["locking", "barrier", "counter", "oltp", "apache", "specjbb"]


def _build_workload(name: str, params: SystemParams, seed: int, args):
    if name == "locking":
        from repro.workloads.locking import LockingWorkload

        return LockingWorkload(
            params, num_locks=args.locks, acquires_per_proc=args.ops, seed=seed
        )
    if name == "barrier":
        from repro.workloads.barrier import BarrierWorkload

        return BarrierWorkload(params, phases=args.ops, seed=seed)
    if name == "counter":
        from repro.workloads.sharing import CounterWorkload

        return CounterWorkload(params, increments=args.ops, seed=seed)
    from repro.workloads.commercial import make_commercial

    return make_commercial(params, name, seed=seed, refs_per_proc=args.ops * 10)


def cmd_list(_args) -> int:
    print("protocols:")
    for name, cfg in PROTOCOLS.items():
        print(f"  {name:22s} family={cfg.family}")
    print("workloads:", ", ".join(WORKLOADS))
    return 0


def cmd_run(args) -> int:
    params = SystemParams(num_chips=args.chips, procs_per_chip=args.procs)
    machine = Machine(params, args.protocol, seed=args.seed)
    workload = _build_workload(args.workload, params, args.seed, args)
    result = machine.run(workload)
    if args.protocol.startswith("Token"):
        machine.check_token_invariants()
    stats = result.stats
    print(f"protocol   {args.protocol}")
    print(f"workload   {args.workload}")
    print(f"runtime    {result.runtime_ns:.1f} ns")
    print(f"hits       {stats.get('l1.hits')}")
    print(f"misses     {stats.get('l1.misses')}")
    if stats.summaries["l1.miss_latency_ps"].count:
        print(f"miss lat   {stats.summaries['l1.miss_latency_ps'].mean / 1000:.1f} ns avg")
    print(f"persistent {stats.get('persistent.requests')}")
    print(f"intra      {result.traffic_bytes(Scope.INTRA)} bytes")
    print(f"inter      {result.traffic_bytes(Scope.INTER)} bytes")
    return 0


def cmd_sweep(args) -> int:
    from repro.common.errors import ConfigError

    params = SystemParams(num_chips=args.chips, procs_per_chip=args.procs)
    runtimes = {}
    for name in PROTOCOLS:
        try:
            machine = Machine(params, name, seed=args.seed)
        except ConfigError:
            continue  # e.g. SnoopingSCMP on a multi-chip machine
        workload = _build_workload(args.workload, params, args.seed, args)
        runtimes[name] = machine.run(workload).runtime_ps
    base = runtimes.get("DirectoryCMP") or next(iter(runtimes.values()))
    print(f"{args.workload}: runtime normalized to DirectoryCMP")
    for name, runtime in sorted(runtimes.items(), key=lambda kv: kv[1]):
        print(f"  {name:22s} {runtime / base:6.2f}")
    return 0


def cmd_verify(args) -> int:
    from repro.verification.checker import check
    from repro.verification.dir_model import DirFlatModel
    from repro.verification.token_model import (
        TokenArbModel,
        TokenDstModel,
        TokenSafetyModel,
    )

    models = [
        (TokenSafetyModel(), False),
        (TokenDstModel(coarse_sends=True, atomic_broadcasts=True), True),
        (DirFlatModel(), True),
    ]
    if not args.fast:
        models.insert(2, (TokenArbModel(coarse_sends=True, atomic_broadcasts=True), True))
    for model, liveness in models:
        result = check(model, max_states=args.max_states, check_liveness=liveness)
        print(result)
    print("all properties verified")
    return 0


def cmd_faults(args) -> int:
    from repro.faults.battery import write_battery

    rates = tuple(float(r) for r in args.rates.split(","))
    write_battery(
        args.out, rates=rates, scale=args.scale, seed=args.seed,
        progress=lambda msg: print(f"... {msg}"),
    )
    with open(args.out) as fh:
        print(fh.read(), end="")
    print(f"wrote {args.out}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.battery import write_report

    write_report(args.out, scale=args.scale, seed=args.seed,
                 progress=lambda msg: print(f"... {msg}"))
    print(f"wrote {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show protocols and workloads")

    for name in ("run", "sweep"):
        p = sub.add_parser(name, help=f"{name} a workload")
        if name == "run":
            p.add_argument("protocol", choices=sorted(PROTOCOLS))
        p.add_argument("workload", choices=WORKLOADS)
        p.add_argument("--chips", type=int, default=4)
        p.add_argument("--procs", type=int, default=4)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--ops", type=int, default=16,
                       help="acquires / phases / increments (x10 refs for "
                            "commercial workloads)")
        p.add_argument("--locks", type=int, default=32)

    v = sub.add_parser("verify", help="model-check the protocol models")
    v.add_argument("--fast", action="store_true")
    v.add_argument("--max-states", type=int, default=6_000_000)

    f = sub.add_parser(
        "faults", help="run the robustness battery under fault injection"
    )
    f.add_argument("--out", default="benchmarks/results/robustness_battery.txt")
    f.add_argument("--rates", default="0,0.05,0.1,0.2",
                   help="comma-separated fault rates to sweep")
    f.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (0.5 = quick look)")
    f.add_argument("--seed", type=int, default=1)

    r = sub.add_parser("report", help="run the experiment battery, write markdown")
    r.add_argument("--out", default="REPORT.md")
    r.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (0.5 = quick look)")
    r.add_argument("--seed", type=int, default=1)

    args = parser.parse_args(argv)
    return {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "verify": cmd_verify,
        "faults": cmd_faults,
        "report": cmd_report,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
