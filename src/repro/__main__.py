"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``    — show the available protocols, workloads and experiments
* ``run``     — run one workload on one protocol, print stats
* ``sweep``   — run a workload across all protocols, print normalized runtimes
* ``trace``   — run one workload with tracing on, write a Perfetto-loadable
  Chrome trace and (optionally) span/profiler reports
* ``bench``   — run a named paper experiment through the engine
* ``perf``    — run the kernel/network/end-to-end performance suite
  (``BENCH_perf.json``; see ``docs/performance.md``)
* ``topo``    — list topology generators, or validate one for a chip
  count and print its canonical link table (text or ``repro.topology/1``
  JSON)
* ``verify``  — model-check the protocol models (Section 5)
* ``lint``    — run the protocol-aware static analysis passes over the
  simulator's own source (``docs/static-analysis.md``)
* ``faults``  — run the robustness battery under an adversarial network
* ``campaign`` — run a declarative fault campaign (token recreation
  recovery scenarios), write a canonical ``repro.campaign/1`` report
* ``telemetry`` — run one workload with time-series sampling on, write
  the canonical ``repro.telemetry/1`` document and print the saturation
  summary
* ``diff``    — compare two canonical JSON documents (metrics,
  telemetry, profiles) with per-counter deltas and ``GLOB:PCT``
  regression gates
* ``report``  — run the experiment battery, write markdown

``run``/``sweep``/``bench``/``faults``/``report`` all execute through the
:mod:`repro.exp` engine: ``--jobs N`` fans cells out across processes,
and results are replayed from the content-addressed cache unless
``--no-cache`` is given.  ``--json`` emits structured CellResult records.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.params import SystemParams
from repro.exp.runner import Runner, run_cell
from repro.exp.spec import Cell
from repro.interconnect.topology import GENERATORS, Topology
from repro.interconnect.traffic import Scope
from repro.system.config import PROTOCOLS
from repro.workloads import REGISTRY, workload_entry


def _auto_tokens(chips: int, procs: int) -> int:
    """Smallest power-of-two token count valid for this machine size.

    Keeps the Table-3 default (64) for the paper configurations and
    scales it for big-topology sweeps, where the cache count exceeds it.
    """
    caches = chips * (2 * procs + 1)
    tokens = 64
    while tokens <= caches:
        tokens *= 2
    return tokens


def _params_from_args(args) -> SystemParams:
    return SystemParams(
        num_chips=args.chips,
        procs_per_chip=args.procs,
        tokens_per_block=_auto_tokens(args.chips, args.procs),
        topology=Topology.named(getattr(args, "topology", "ptp")),
    )


def _telemetry_from_args(args, force: bool = False):
    """The cell's TelemetryConfig, or None when sampling is off."""
    if not force and not getattr(args, "telemetry", False):
        return None
    from repro.obs.telemetry import TelemetryConfig

    return TelemetryConfig(
        sample_every_events=getattr(args, "telemetry_every", 4096)
    )


def _cell_from_args(args, protocol: str, check_invariants: bool = False,
                    telemetry=None) -> Cell:
    entry = workload_entry(args.workload)
    return Cell(
        protocol=protocol,
        workload=entry.name,
        workload_kwargs=entry.cli_kwargs(args),
        seed=args.seed,
        params=_params_from_args(args),
        check_invariants=check_invariants,
        telemetry=telemetry,
    )


def _emit_telemetry(result, out_path) -> None:
    """Write/print one result's telemetry document (shared by commands)."""
    from repro.obs.telemetry import render_saturation, write_telemetry

    if result.telemetry is None:
        return
    print(render_saturation(result.telemetry))
    if out_path:
        import os

        parent = os.path.dirname(out_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        write_telemetry(out_path, result.telemetry)
        print(f"wrote {out_path}")


def _runner(args, progress=None) -> Runner:
    return Runner(
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        progress=progress,
    )


def cmd_list(_args) -> int:
    print("protocols:")
    for name, cfg in PROTOCOLS.items():
        print(f"  {name:22s} family={cfg.family}")
    print("workloads:")
    for name, entry in REGISTRY.items():
        print(f"  {name:22s} {entry.description}")
    from repro.exp.library import EXPERIMENTS

    print("experiments (python -m repro bench <id>):")
    for exp_id, exp in EXPERIMENTS.items():
        print(f"  {exp_id:22s} {exp.title}")
    return 0


def cmd_run(args) -> int:
    result = run_cell(_cell_from_args(
        args, args.protocol, check_invariants=True,
        telemetry=_telemetry_from_args(args),
    ))
    if args.json:
        print(result.to_json())
        return 0
    print(f"protocol   {args.protocol}")
    print(f"workload   {args.workload}")
    print(f"runtime    {result.runtime_ns:.1f} ns")
    print(f"hits       {result.get('l1.hits')}")
    print(f"misses     {result.get('l1.misses')}")
    miss_lat = result.summary("l1.miss_latency_ps")
    if miss_lat["count"]:
        print(f"miss lat   {miss_lat['mean'] / 1000:.1f} ns avg")
    print(f"persistent {result.get('persistent.requests')}")
    print(f"intra      {result.scope_bytes(Scope.INTRA)} bytes")
    print(f"inter      {result.scope_bytes(Scope.INTER)} bytes")
    _emit_telemetry(result, getattr(args, "telemetry_out", None))
    return 0


def cmd_sweep(args) -> int:
    from repro.common.errors import ConfigError
    from repro.system.spec import MachineSpec

    params = _params_from_args(args)
    telemetry = _telemetry_from_args(args)
    cells = []
    for name in PROTOCOLS:
        try:
            MachineSpec(params=params, protocol=name, seed=args.seed).build()
        except ConfigError:
            continue  # e.g. SnoopingSCMP on a multi-chip machine
        cells.append(_cell_from_args(args, name, telemetry=telemetry))
    runner = _runner(args)
    result = runner.run_cells(cells, name=f"sweep-{args.workload}")
    if args.json:
        print(result.to_json())
        return 0
    runtimes = {res.protocol: res.runtime_ps for res in result}
    base = runtimes.get("DirectoryCMP") or next(iter(runtimes.values()))
    print(f"{args.workload}: runtime normalized to DirectoryCMP")
    for name, runtime in sorted(runtimes.items(), key=lambda kv: kv[1]):
        print(f"  {name:22s} {runtime / base:6.2f}")
    if telemetry is not None:
        for res in result:
            windows = len(res.telemetry["saturation"]) if res.telemetry else 0
            print(f"  {res.protocol:22s} {windows} saturation window(s)")
    if result.cache_hits:
        print(f"  ({result.cache_hits}/{len(result)} cells from cache)")
    return 0


def cmd_bench(args) -> int:
    from repro.exp.library import EXPERIMENTS

    if not args.experiment:
        print("experiments:")
        for exp_id, exp in EXPERIMENTS.items():
            print(f"  {exp_id:12s} {exp.title}")
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    exp = EXPERIMENTS[args.experiment]
    # With --json, stdout is the machine-readable record stream (the CI
    # determinism gate byte-compares it); progress notes go to stderr.
    out = sys.stderr if args.json else sys.stdout
    runner = _runner(args, progress=lambda msg: print(f"... {msg}", file=out))
    result = runner.run(exp.build())
    if args.json:
        print(result.to_json())
        return 0
    for table in exp.render(result):
        print()
        print(table.render())
    print()
    print(f"{len(result)} cells, {result.cache_hits} from cache "
          f"({result.hit_rate:.0%} hit rate)")
    return 0


def cmd_trace(args) -> int:
    import os

    from repro.obs import (
        KernelProfiler,
        SpanBuilder,
        Tracer,
        validate_chrome_trace,
        write_chrome_trace,
    )

    tracer = Tracer()
    profiler = (
        KernelProfiler() if args.profile or args.profile_out else None
    )
    cell = _cell_from_args(args, args.protocol,
                           telemetry=_telemetry_from_args(args))
    result = run_cell(cell, tracer=tracer, profiler=profiler)
    report = SpanBuilder().build(tracer.events)
    parent = os.path.dirname(args.trace_out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    doc = write_chrome_trace(args.trace_out, tracer.events, report)
    if args.validate:
        count = validate_chrome_trace(doc)
        print(f"validated {count} trace records")
    print(f"wrote {args.trace_out} ({len(tracer.events)} events; "
          f"load at https://ui.perfetto.dev)")
    print(f"runtime {result.runtime_ns:.1f} ns, "
          f"{result.get('l1.misses')} misses")
    if args.spans:
        print()
        print(report.render())
    if profiler is not None:
        print()
        print(profiler.report())
        if args.profile_out:
            import json

            with open(args.profile_out, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(profiler.to_dict(), sort_keys=True,
                                    separators=(",", ":")) + "\n")
            print(f"wrote {args.profile_out}")
    _emit_telemetry(result, getattr(args, "telemetry_out", None))
    return 0


def cmd_telemetry(args) -> int:
    from repro.obs.telemetry import validate_telemetry

    cell = _cell_from_args(args, args.protocol,
                           telemetry=_telemetry_from_args(args, force=True))
    result = run_cell(cell)
    validate_telemetry(result.telemetry)
    if args.json:
        from repro.obs.telemetry import render_telemetry

        print(render_telemetry(result.telemetry), end="")
        return 0
    doc = result.telemetry
    print(f"protocol   {args.protocol}")
    print(f"workload   {args.workload}")
    print(f"runtime    {result.runtime_ns:.1f} ns")
    print(f"probes     {len(doc['probes'])} over {len(doc['links'])} links")
    _emit_telemetry(result, args.telemetry_out)
    return 0


def cmd_diff(args) -> int:
    import json

    from repro.obs.diff import (
        diff_report, parse_gate, render_diff_json, render_diff_report,
    )

    try:
        gates = [parse_gate(text) for text in args.gate]
        docs = []
        for path in (args.a, args.b):
            with open(path, encoding="utf-8") as fh:
                docs.append(json.load(fh))
    except (OSError, ValueError) as err:
        print(f"diff: {err}", file=sys.stderr)
        return 2
    report = diff_report(docs[0], docs[1], gates)
    if args.json:
        print(render_diff_json(report), end="")
    else:
        print(render_diff_report(report, show_all=args.show_all))
    return 0 if report["ok"] else 1


def cmd_topo(args) -> int:
    import json

    from repro.common.errors import ConfigError

    if not args.generator:
        print("topology generators:")
        for name in sorted(GENERATORS):
            _fn, desc = GENERATORS[name]
            print(f"  {name:10s} {desc}")
        return 0
    try:
        topo = Topology.named(args.generator)
        params = SystemParams(
            num_chips=args.chips,
            procs_per_chip=args.procs,
            tokens_per_block=_auto_tokens(args.chips, args.procs),
            topology=topo,
        )
        # describe() validates: connectivity of every endpoint pair plus
        # per-link bandwidth/latency sanity; failures exit 2.
        doc = topo.build(params).describe()
    except ConfigError as err:
        print(f"topo: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    stats = doc["stats"]
    print(f"generator  {doc['generator']} "
          f"({args.chips} chips x {args.procs} procs)")
    print(f"endpoints  {stats['endpoints']}")
    print(f"vertices   {stats['vertices']}")
    print(f"links      {stats['links']}")
    print(f"diameter   {stats['diameter_hops']} hops "
          f"(mean {stats['mean_hops']:.2f})")
    print()
    print(f"{'link':32s} {'scope':6s} {'lat(ns)':>8s} {'GB/s':>7s} buffer")
    for link in doc["links"]:
        buf = link["buffer_bytes"]
        print(f"{link['name']:32s} {link['scope']:6s} "
              f"{link['latency_ps'] / 1000:8.1f} {link['bytes_per_ns']:7.1f} "
              f"{buf if buf is not None else '-'}")
    return 0


def cmd_perf(args) -> int:
    from repro.perf import run_from_args

    return run_from_args(args)


def cmd_verify(args) -> int:
    from repro.verification.checker import check
    from repro.verification.dir_model import DirFlatModel
    from repro.verification.token_model import (
        TokenArbModel,
        TokenDstModel,
        TokenRecreateModel,
        TokenSafetyModel,
    )

    models = [
        (TokenSafetyModel(), False),
        (TokenDstModel(coarse_sends=True, atomic_broadcasts=True), True),
        (TokenRecreateModel(), False),
        (DirFlatModel(), True),
    ]
    if not args.fast:
        models.insert(2, (TokenArbModel(coarse_sends=True, atomic_broadcasts=True), True))
    for model, liveness in models:
        result = check(model, max_states=args.max_states, check_liveness=liveness)
        print(result)
    print("all properties verified")
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.staticcheck import (
        PASSES, diff_baseline, explain_rule, load_baseline, render_json,
        render_text, run_passes, write_baseline,
    )

    if args.explain is not None:
        report = explain_rule(args.explain)
        if report is None:
            known = sorted(r for p in PASSES for r in p.rules)
            print(f"lint: unknown rule '{args.explain}' "
                  f"(known: {', '.join(known)})", file=sys.stderr)
            return 2
        print(report, end="")
        return 0

    passes = None
    if args.pass_name is not None:
        passes = [p for p in PASSES if p.id == args.pass_name]
        if not passes:
            known = ", ".join(p.id for p in PASSES)
            print(f"lint: unknown pass '{args.pass_name}' (known: {known})",
                  file=sys.stderr)
            return 2

    from repro.staticcheck.protomodel import build_model, render_protomodel
    from repro.staticcheck.runner import default_root
    from repro.staticcheck.source import load_tree

    files = load_tree(default_root())
    findings, pass_ids = run_passes(files=files, passes=passes)
    if args.model_out is not None:
        out_path = Path(args.model_out)
        out_path.write_text(render_protomodel(build_model(files)))
        print(f"wrote {out_path} (schema repro.protomodel/1)", file=sys.stderr)
    baseline_path = Path(args.baseline)
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {baseline_path} ({len(findings)} finding(s) baselined)")
        return 0
    baseline = load_baseline(baseline_path)
    new, stale = diff_baseline(findings, baseline)
    if args.json:
        print(render_json(new, pass_ids), end="")
    else:
        print(render_text(new))
        if stale:
            print(f"note: {len(stale)} stale baseline fingerprint(s) — "
                  f"rerun with --update-baseline to shrink the file")
    return 1 if new else 0


def cmd_faults(args) -> int:
    from repro.common.errors import ConfigError
    from repro.faults.battery import write_battery

    try:
        rates = tuple(float(r) for r in args.rates.split(","))
        write_battery(
            args.out, rates=rates, scale=args.scale, seed=args.seed,
            jobs=args.jobs, cache=not args.no_cache,
            progress=lambda msg: print(f"... {msg}"),
        )
    except (ValueError, ConfigError) as err:
        # e.g. a ClassPolicy rejecting an out-of-range rate: a user input
        # problem, not a crash — report it cleanly.
        print(f"faults: {err}", file=sys.stderr)
        return 2
    with open(args.out) as fh:
        print(fh.read(), end="")
    print(f"wrote {args.out}")
    return 0


def cmd_campaign(args) -> int:
    import os

    from repro.common.errors import ConfigError
    from repro.recovery.campaign import (
        CampaignConfig, render_text as render_campaign, run_campaign,
        write_report,
    )

    try:
        config = CampaignConfig.load(args.config)
    except (ValueError, ConfigError, OSError) as err:
        print(f"campaign: {err}", file=sys.stderr)
        return 2
    runner = _runner(args, progress=lambda msg: print(f"... {msg}"))
    report = run_campaign(config, runner, spans=not args.no_spans)
    parent = os.path.dirname(args.out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    write_report(report, args.out)
    print(render_campaign(report))
    print(f"wrote {args.out}")
    return 1 if report["totals"]["failed"] else 0


def cmd_report(args) -> int:
    from repro.analysis.battery import write_report

    write_report(args.out, scale=args.scale, seed=args.seed,
                 jobs=args.jobs, cache=not args.no_cache,
                 progress=lambda msg: print(f"... {msg}"))
    print(f"wrote {args.out}")
    return 0


def _add_engine_flags(parser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment engine")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed result cache")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show protocols, workloads and experiments")

    for name in ("run", "sweep", "trace", "telemetry"):
        p = sub.add_parser(name, help=f"{name} a workload")
        if name in ("run", "trace", "telemetry"):
            p.add_argument("protocol", choices=sorted(PROTOCOLS))
        p.add_argument("workload", choices=sorted(REGISTRY))
        p.add_argument("--chips", type=int, default=4)
        p.add_argument("--procs", type=int, default=4)
        p.add_argument("--topology", choices=sorted(GENERATORS), default="ptp",
                       help="inter-CMP fabric generator (default: the "
                            "paper's point-to-point network)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--ops", type=int, default=16,
                       help="acquires / phases / increments / rounds (x10 "
                            "refs for commercial workloads)")
        p.add_argument("--locks", type=int, default=32)
        if name in ("run", "sweep", "telemetry"):
            p.add_argument("--json", action="store_true",
                           help="emit structured CellResult records"
                           if name != "telemetry" else
                           "print the repro.telemetry/1 document to stdout")
        if name == "sweep":
            _add_engine_flags(p)
        if name != "telemetry":
            p.add_argument("--telemetry", action="store_true",
                           help="sample time-series telemetry during the run")
        p.add_argument("--telemetry-every", type=int, default=4096,
                       help="sampling cadence in fired kernel events")
        p.add_argument("--telemetry-out",
                       default="benchmarks/results/telemetry.json"
                       if name == "telemetry" else "",
                       help="repro.telemetry/1 output path"
                       + ("" if name == "telemetry"
                          else " (empty: don't write)"))
        if name == "trace":
            p.add_argument("--trace-out",
                           default="benchmarks/results/trace.json",
                           help="Chrome trace output path (Perfetto-loadable)")
            p.add_argument("--spans", action="store_true",
                           help="print the transaction-span latency report")
            p.add_argument("--profile", action="store_true",
                           help="profile kernel event handlers (wall time)")
            p.add_argument("--profile-out", default="",
                           help="write the profiler's deterministic "
                                "repro.profile/1 projection (diffable)")
            p.add_argument("--validate", action="store_true",
                           help="schema-validate the trace before writing")

    d = sub.add_parser(
        "diff", help="compare two canonical JSON documents"
    )
    d.add_argument("a", help="baseline document (metrics/telemetry/profile)")
    d.add_argument("b", help="candidate document")
    d.add_argument("--gate", action="append", default=[], metavar="GLOB:PCT",
                   help="fail (exit 1) when a key matching GLOB changes by "
                        "more than PCT percent; repeatable")
    d.add_argument("--json", action="store_true",
                   help="emit the canonical repro.diff/1 report")
    d.add_argument("--all", action="store_true", dest="show_all",
                   help="show unchanged keys too")

    b = sub.add_parser("bench", help="run a named paper experiment")
    b.add_argument("experiment", nargs="?", default="",
                   help="experiment id (omit to list)")
    b.add_argument("--json", action="store_true",
                   help="emit structured CellResult records")
    _add_engine_flags(b)

    t = sub.add_parser(
        "topo", help="list or validate interconnect topology generators"
    )
    t.add_argument("generator", nargs="?", default="",
                   help="generator name (omit to list); validates "
                        "connectivity for --chips/--procs")
    t.add_argument("--chips", type=int, default=4)
    t.add_argument("--procs", type=int, default=4)
    t.add_argument("--json", action="store_true",
                   help="emit the canonical repro.topology/1 document")

    from repro.perf import add_arguments as _add_perf_arguments

    pf = sub.add_parser(
        "perf", help="run the kernel/network/e2e performance suite"
    )
    _add_perf_arguments(pf)

    v = sub.add_parser("verify", help="model-check the protocol models")
    v.add_argument("--fast", action="store_true")
    v.add_argument("--max-states", type=int, default=6_000_000)

    lt = sub.add_parser(
        "lint", help="run the protocol-aware static analysis passes"
    )
    lt.add_argument("--json", action="store_true",
                    help="emit the canonical repro.staticcheck/1 JSON report")
    lt.add_argument("--baseline", default="staticcheck-baseline.json",
                    help="baseline file of grandfathered finding fingerprints")
    lt.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current findings")
    lt.add_argument("--pass", dest="pass_name", default=None, metavar="NAME",
                    help="run a single pass by id (exit 2 if unknown)")
    lt.add_argument("--explain", default=None, metavar="RULE",
                    help="print a rule's documentation and an example "
                         "finding, then exit (exit 2 if unknown)")
    lt.add_argument("--model-out", default=None, metavar="PATH",
                    help="also write the canonical repro.protomodel/1 "
                         "transition-graph artifact to PATH")

    f = sub.add_parser(
        "faults", help="run the robustness battery under fault injection"
    )
    f.add_argument("--out", default="benchmarks/results/robustness_battery.txt")
    f.add_argument("--rates", default="0,0.05,0.1,0.2",
                   help="comma-separated fault rates to sweep")
    f.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (0.5 = quick look)")
    f.add_argument("--seed", type=int, default=1)
    _add_engine_flags(f)

    c = sub.add_parser(
        "campaign", help="run a declarative recovery fault campaign"
    )
    c.add_argument("config",
                   help="campaign config JSON (see benchmarks/campaigns/)")
    c.add_argument("-o", "--out",
                   default="benchmarks/results/campaign.json",
                   help="canonical repro.campaign/1 report output path")
    c.add_argument("--no-spans", action="store_true",
                   help="skip the traced span representatives "
                        "(faster; drops time_to_recover_ps)")
    _add_engine_flags(c)

    r = sub.add_parser("report", help="run the experiment battery, write markdown")
    r.add_argument("--out", default="REPORT.md")
    r.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (0.5 = quick look)")
    r.add_argument("--seed", type=int, default=1)
    _add_engine_flags(r)

    args = parser.parse_args(argv)
    return {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "topo": cmd_topo,
        "perf": cmd_perf,
        "verify": cmd_verify,
        "lint": cmd_lint,
        "faults": cmd_faults,
        "campaign": cmd_campaign,
        "telemetry": cmd_telemetry,
        "diff": cmd_diff,
        "report": cmd_report,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
