"""Simulation-purity pass (rule ``purity-import``).

The simulation packages must be closed over (seed, config) — no ambient
process state.  Importing ``os``/``time``/``random``/``threading`` (and
friends) into them is how ambient state leaks in: an env-var default, a
wall-clock timestamp, the global RNG, a background thread racing the
event loop.  The determinism pass catches specific *uses*; this pass
draws the coarser line at the import, which is also the cheapest place
to review an exception — a reviewed ``# staticcheck: ignore[purity-import]``
marks the one sanctioned case (the kernel's opt-in profiler reading
``perf_counter_ns``).
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.base import Pass, module_in
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

#: Packages that must stay pure.
SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.directory",
    "repro.interconnect",
    "repro.snooping",
    "repro.perfect",
    "repro.memory",
    "repro.cpu",
    "repro.system",
)

#: Stdlib modules that carry ambient process state.
FORBIDDEN = {
    "os",
    "time",
    "random",
    "datetime",
    "threading",
    "multiprocessing",
    "socket",
    "subprocess",
}


class PurityPass(Pass):
    id = "purity"
    description = "simulation packages import no ambient-state stdlib modules"
    rules = ("purity-import",)
    rule_docs = {
        "purity-import": (
            "A simulation package imports an ambient-state stdlib module "
            "(os, time, random, datetime, threading, ...).  Simulation "
            "must be a function of (seed, config); ambient process state "
            "is how nondeterminism sneaks in.  The sanctioned exceptions "
            "carry inline suppressions."
        ),
    }
    rule_examples = {
        "purity-import": (
            "repro/sim/kernel.py:58: error[purity-import] simulation "
            "package imports 'time' (ambient process state)"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for src in files:
            if src.module != "<fixture>" and not module_in(src, SCOPE):
                continue
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        top = alias.name.split(".")[0]
                        if top in FORBIDDEN:
                            findings.append(
                                self.finding(
                                    src, node, "purity-import",
                                    f"import of ambient-state module "
                                    f"'{alias.name}' in simulation package "
                                    f"{src.module}",
                                )
                            )
                elif isinstance(node, ast.ImportFrom):
                    top = (node.module or "").split(".")[0]
                    if node.level == 0 and top in FORBIDDEN:
                        names = ", ".join(a.name for a in node.names)
                        findings.append(
                            self.finding(
                                src, node, "purity-import",
                                f"from-import of ambient-state module "
                                f"'{node.module}' ({names}) in simulation "
                                f"package {src.module}",
                            )
                        )
        return findings
