"""Protocol-aware static analysis over the simulator's own source.

The paper's simplicity argument (Section 5) is that TokenCMP's flat
correctness substrate is easy to *check*.  The model checker verifies
down-scaled models; this package guards the full-size controllers against
the bug classes the reproduction cares most about:

* **dispatch** — every controller's ``MsgType`` ladder handles every
  message type routing can actually deliver to it (no silent drops);
* **determinism** — no unordered ``set`` iteration, wall-clock reads, or
  unseeded randomness feeding simulation behaviour (PR 2-4 made
  byte-identical output load-bearing: content-addressed caching, trace
  comparison, perf-stat gating all depend on it);
* **token-discipline** — token-count state changes only through the
  approved ledger helpers (``TokenEntry.absorb``/``take``,
  ``TokenMemController._set``);
* **purity** — simulation packages import no ambient-state stdlib
  modules (os/time/random/threading);
* **protocol-model** — the controllers' guarded-transition graph and the
  checker models' ``transitions()`` graph are extracted from the AST and
  cross-checked (missing transitions, token-delta sign flips, unguarded
  stale-epoch carriers), with a canonical ``repro.protomodel/1``
  artifact;
* **suppressions** — every ``# staticcheck: ignore[...]`` comment still
  suppresses at least one finding (the inventory cannot rot).

Entry points: :func:`repro.staticcheck.runner.run_passes` and the
``python -m repro lint`` CLI.  See ``docs/static-analysis.md``.
"""

from repro.staticcheck.base import PASSES, Pass, explain_rule
from repro.staticcheck.baseline import diff_baseline, load_baseline, write_baseline
from repro.staticcheck.findings import Finding, render_json, render_text
from repro.staticcheck.protomodel import build_model, render_protomodel
from repro.staticcheck.runner import run_passes
from repro.staticcheck.source import SourceFile, load_tree

__all__ = [
    "Finding",
    "Pass",
    "PASSES",
    "SourceFile",
    "build_model",
    "diff_baseline",
    "explain_rule",
    "load_baseline",
    "load_tree",
    "render_json",
    "render_protomodel",
    "render_text",
    "run_passes",
    "write_baseline",
]
