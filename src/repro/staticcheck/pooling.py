"""Message-pool discipline (rule ``pool-discipline``).

Pooled :class:`~repro.interconnect.message.Message` records live exactly
from acquire to final delivery: the receiving controller's dispatch runs,
then the record goes back on the freelist and its fields are overwritten
by the next acquire.  Any reference that outlives the dispatch is an
aliasing bug waiting for a freelist reuse — the classic symptom is a
deferred callback firing with a message that now describes a *different*
transaction.  The pooling equivalence tests catch this dynamically on the
configs they run; this pass closes the loop statically.

Flagged inside handler methods (any method with a parameter named
``msg`` in the simulation packages):

* **escape to the instance** — ``self.x = msg``, ``self.x[k] = msg``, or
  container escapes (``self.x.append/add/appendleft(msg)``): the message
  would outlive its delivery on controller state;
* **escape to a closure** — a nested ``def``/``lambda`` that refers to
  ``msg``: deferred continuations must copy scalars out instead (see
  ``TokenCacheController._respond_transient``);
* **use after release** — referencing ``msg`` in a statement after a
  ``release(msg)`` call in the same block: the record may already be
  reissued.

The :class:`~repro.core.persistent.Arbiter` queue is the one sanctioned
retention site (arbiter-path requests are constructed plain, never
pooled), approved below.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.staticcheck.base import Pass, module_in
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

#: Packages whose controllers handle pooled messages.  ``repro.faults``
#: is deliberately absent: the injector's in-flight ledger is the
#: sanctioned owner of messages it absorbs and re-emits.
SCOPE = (
    "repro.core",
    "repro.directory",
    "repro.interconnect",
    "repro.snooping",
    "repro.perfect",
)

#: (class, method) pairs allowed to retain a handled message.
APPROVED: Tuple[Tuple[str, Optional[str]], ...] = (
    # The arbiter queues PERSIST_REQ until activation; requestors send
    # those as plain (unpooled) constructions for exactly this reason.
    ("Arbiter", "_process"),
    # The pool's own free list is where released records are *supposed*
    # to be retained.
    ("MessagePool", None),
    # Directory-protocol messages are never pooled (only the token
    # protocols route through MessagePool), so parking a demand message
    # across a hold window cannot alias a recycled record.
    ("DirL1Controller", "_defer"),
)

#: Parameter name identifying the handled (pool-owned) message.
_MSG = "msg"

#: Container methods that capture a reference to their argument.
_CAPTURING_CALLS = {"append", "appendleft", "add", "push", "setdefault"}


def _is_approved(class_name: Optional[str], method: Optional[str]) -> bool:
    for cls, meth in APPROVED:
        if class_name == cls and (meth is None or method == meth):
            return True
    return False


def _is_self_attr(node: ast.AST) -> bool:
    """``self.x`` or any attribute/subscript chain rooted at ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _mentions_msg(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == _MSG
        for sub in ast.walk(node)
    )


class PoolDisciplinePass(Pass):
    id = "pooling"
    description = "pooled messages do not escape past their delivery"
    rules = ("pool-discipline",)
    rule_docs = {
        "pool-discipline": (
            "A handled message escapes its dispatch: stored on the "
            "instance, captured in a nested def/lambda, or referenced "
            "after release().  Pooled Message records are recycled at "
            "delivery end, so any surviving reference aliases a record "
            "that now describes a different transaction.  Copy scalars "
            "out instead; sanctioned retention sites live in APPROVED."
        ),
    }
    rule_examples = {
        "pool-discipline": (
            "repro/core/l1.py:95: error[pool-discipline] handled "
            "message 'msg' is stored on the instance "
            "(self._pending.append(msg)): pooled records are recycled "
            "after delivery"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for src in files:
            if src.module != "<fixture>" and not module_in(src, SCOPE):
                continue
            findings.extend(self._scan(src))
        return findings

    def _scan(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_approved(node.name, stmt.name):
                    continue
                params = {a.arg for a in stmt.args.args}
                if _MSG not in params:
                    continue
                self._scan_handler(src, node.name, stmt, out)
        return out

    def _scan_handler(
        self,
        src: SourceFile,
        class_name: str,
        fn: ast.FunctionDef,
        out: List[Finding],
    ) -> None:
        where = f"{class_name}.{fn.name}"
        for sub in ast.walk(fn):
            # Escape to the instance: self.x = msg / self.x[k] = msg.
            if isinstance(sub, ast.Assign):
                value = sub.value
                if isinstance(value, ast.Name) and value.id == _MSG:
                    for tgt in sub.targets:
                        if _is_self_attr(tgt):
                            out.append(self.finding(
                                src, sub, "pool-discipline",
                                f"pooled message stored on the instance in "
                                f"{where} — it is recycled after delivery; "
                                f"copy the scalars you need instead",
                            ))
            # Escape into a container hanging off self.
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CAPTURING_CALLS
                    and _is_self_attr(func.value)
                    and any(
                        isinstance(a, ast.Name) and a.id == _MSG
                        for a in sub.args
                    )
                ):
                    out.append(self.finding(
                        src, sub, "pool-discipline",
                        f"pooled message captured into a container in "
                        f"{where} ({func.attr}) — it is recycled after "
                        f"delivery; copy the scalars you need instead",
                    ))
            # Escape into a deferred closure.
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                if sub is fn:
                    continue
                inner_params = {a.arg for a in sub.args.args}
                if _MSG in inner_params:
                    continue  # shadowed: the closure owns its own msg
                if _mentions_msg(sub.body if isinstance(sub, ast.Lambda)
                                 else ast.Module(body=sub.body,
                                                 type_ignores=[])):
                    out.append(self.finding(
                        src, sub, "pool-discipline",
                        f"closure in {where} captures the handled message "
                        f"— a deferred continuation outlives the delivery; "
                        f"pass scalars (mtype/addr/requestor) instead",
                    ))
        # Use after release, per statement block.
        self._scan_use_after_release(src, where, fn, out)

    def _scan_use_after_release(
        self,
        src: SourceFile,
        where: str,
        fn: ast.FunctionDef,
        out: List[Finding],
    ) -> None:
        for body in _blocks(fn):
            released_at: Optional[ast.stmt] = None
            for stmt in body:
                if released_at is not None and _mentions_msg(stmt):
                    out.append(self.finding(
                        src, stmt, "pool-discipline",
                        f"pooled message used after release(msg) in "
                        f"{where} — the record may already be reissued",
                    ))
                    released_at = None  # one finding per block is enough
                if _is_release_call(stmt):
                    released_at = stmt
        return None


def _is_release_call(stmt: ast.stmt) -> bool:
    """True for an expression statement ``<anything>.release(msg)``."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    call = stmt.value
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "release"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Name)
        and call.args[0].id == _MSG
    )


def _blocks(fn: ast.FunctionDef):
    """Every statement list nested under ``fn`` (bodies, orelse, finally)."""
    stack: List[List[ast.stmt]] = [fn.body]
    while stack:
        body = stack.pop()
        yield body
        for stmt in body:
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if isinstance(inner, list) and inner and isinstance(
                    inner[0], ast.stmt
                ):
                    stack.append(inner)
