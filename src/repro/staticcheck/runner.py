"""Top-level driver: load the tree, run the passes, report.

Used by ``python -m repro lint`` and directly by the test suite (which
feeds fixture files through ``extra_files`` to seed violations without
touching the real tree).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.staticcheck.base import PASSES, Pass
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile, load_tree


def default_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


def run_passes(
    root: Optional[Path] = None,
    extra_files: Optional[List[Path]] = None,
    passes: Optional[Sequence[Pass]] = None,
    files: Optional[List[SourceFile]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run ``passes`` (default: all four) over the package at ``root``.

    Returns ``(findings, pass_ids)`` with findings globally sorted.
    """
    if files is None:
        files = load_tree(root or default_root(), extra_files=extra_files)
    selected = list(passes) if passes is not None else list(PASSES)
    findings: List[Finding] = []
    for p in selected:
        findings.extend(p.run(files))
    return sorted(findings), [p.id for p in selected]
