"""Top-level driver: load the tree, run the passes, report.

Used by ``python -m repro lint`` and directly by the test suite (which
feeds fixture files through ``extra_files`` to seed violations without
touching the real tree).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.staticcheck.base import PASSES, Pass
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile, load_tree
from repro.staticcheck.suppressions import UnusedSuppressionPass


def default_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


def run_passes(
    root: Optional[Path] = None,
    extra_files: Optional[List[Path]] = None,
    passes: Optional[Sequence[Pass]] = None,
    files: Optional[List[SourceFile]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run ``passes`` (default: the full registry) over ``root``.

    Returns ``(findings, pass_ids)`` with findings globally sorted.

    Detector passes record which suppression comments consumed a finding;
    the ``suppressions`` pass judges against those credits.  When it is
    selected, every *registered* detector contributes credits — even
    detectors outside the selection run in credit-only mode (their
    findings discarded) so ``--pass suppressions`` cannot call a
    suppression unused just because its detector was deselected.
    """
    if files is None:
        files = load_tree(root or default_root(), extra_files=extra_files)
    selected = list(passes) if passes is not None else list(PASSES)
    used: Set[Tuple[str, int]] = set()
    findings: List[Finding] = []
    judges = [p for p in selected if isinstance(p, UnusedSuppressionPass)]
    detectors = [p for p in selected if not isinstance(p, UnusedSuppressionPass)]
    for p in detectors:
        findings.extend(p.run(files, used=used))
    if judges:
        ran = {p.id for p in detectors}
        for p in PASSES:
            if isinstance(p, UnusedSuppressionPass) or p.id in ran:
                continue
            p.run(files, used=used)  # credit-only: findings discarded
        for p in judges:
            findings.extend(p.run(files, used=used))
    return sorted(findings), [p.id for p in selected]
