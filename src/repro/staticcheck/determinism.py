"""Determinism lint (rule family ``det-*``).

Byte-identical reruns are load-bearing in this repo: the experiment
engine's content-addressed result cache (PR 2), the Chrome-trace
comparison (PR 3), and the perf-regression gate (PR 4) all diff outputs
directly.  The classic ways a Python simulator silently loses that
property:

* ``det-set-iter`` — iterating a ``set``/``frozenset`` where order
  reaches behaviour.  ``NodeId`` is a NamedTuple of (str-enum, int, int);
  its hash — and therefore raw set order — varies per process under hash
  randomization, so a fan-out loop over a sharer *set* delivers
  invalidations in a different order on every run.
* ``det-wallclock`` — ``time.time()`` / ``datetime.now()`` inside code
  whose outputs are compared across runs.  (``perf_counter`` /
  ``perf_counter_ns`` are fine: they are used for *measuring*, and the
  reporters exclude elapsed time from comparable projections.)
* ``det-unseeded-random`` — the ``random`` module's global generator, or
  ``Random()`` constructed without a seed.  All simulation randomness
  must flow from the seeded per-run RNG.
* ``det-float-time`` — ``round()``/``float()`` applied to picosecond
  quantities inside the simulation core; timestamps are integers end to
  end and float rounding reintroduces platform drift.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.staticcheck.base import Pass, attr_chain, call_name, module_in
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

#: Packages whose behaviour is simulation-visible.
SIM_SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.directory",
    "repro.interconnect",
    "repro.snooping",
    "repro.perfect",
    "repro.memory",
    "repro.cpu",
    "repro.system",
)

#: set-iteration also corrupts the model checker's transition order.
SET_ITER_SCOPE = SIM_SCOPE + ("repro.verification",)

#: wall-clock reads additionally poison report/battery comparability.
WALLCLOCK_SCOPE = SET_ITER_SCOPE + ("repro.analysis",)

FLOAT_TIME_SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.directory",
    "repro.interconnect",
)

#: Consumers that erase iteration order; a set feeding these is fine.
_ORDER_INSENSITIVE = {
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
}

_WALLCLOCK_CHAINS = {
    "time.time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "seed",
}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


class _Env:
    """Per-function name bindings, for set-typedness resolution."""

    def __init__(self, fn: ast.AST):
        self.assign: Dict[str, ast.AST] = {}
        self.loops: Dict[str, ast.AST] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name):
                    self.assign[tgt.id] = node.value
            elif isinstance(node, (ast.For, ast.comprehension)):
                tgt = node.target
                if isinstance(tgt, ast.Name):
                    self.loops[tgt.id] = node.iter


def _set_attrs_of_file(src: SourceFile) -> Set[str]:
    """``self.X`` attribute names assigned a set anywhere in the file."""
    attrs: Set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            is_set = (
                isinstance(value, (ast.Set, ast.SetComp))
                or (isinstance(value, ast.Call) and call_name(value) in ("set", "frozenset"))
            )
            if not is_set:
                continue
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    attrs.add(tgt.attr)
    return attrs


def _is_setlike(
    expr: ast.AST, env: _Env, set_attrs: Set[str], depth: int = 6
) -> bool:
    if depth <= 0 or expr is None:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("set", "frozenset"):
            return True
        func = expr.func
        if isinstance(func, ast.Attribute):
            if name == "copy":
                return _is_setlike(func.value, env, set_attrs, depth - 1)
            if name in _SET_METHODS:
                return _is_setlike(func.value, env, set_attrs, depth - 1)
            if name == "get" and len(expr.args) >= 2:
                return _is_setlike(expr.args[1], env, set_attrs, depth - 1)
        return False
    if isinstance(expr, ast.Name):
        if expr.id in env.assign:
            return _is_setlike(env.assign[expr.id], env, set_attrs, depth - 1)
        return False
    if isinstance(expr, ast.Attribute):
        return (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in set_attrs
        )
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _is_setlike(expr.left, env, set_attrs, depth - 1) or _is_setlike(
            expr.right, env, set_attrs, depth - 1
        )
    if isinstance(expr, ast.IfExp):
        return _is_setlike(expr.body, env, set_attrs, depth - 1) or _is_setlike(
            expr.orelse, env, set_attrs, depth - 1
        )
    return False


class DeterminismPass(Pass):
    id = "determinism"
    description = "no unordered iteration, wall-clock, or unseeded randomness"
    rules = (
        "det-set-iter",
        "det-wallclock",
        "det-unseeded-random",
        "det-float-time",
    )
    rule_docs = {
        "det-set-iter": (
            "A for-loop or comprehension iterates a set-typed expression "
            "in simulation/verification code.  NodeId hashes vary per "
            "process under hash randomization, so raw set order reorders "
            "the event stream and breaks byte-identical reruns.  Iterate "
            "sorted(...) instead; feeding a set to an order-insensitive "
            "consumer (sorted, min, sum, ...) is fine."
        ),
        "det-wallclock": (
            "time.time()/datetime.now() in compared code.  Wall-clock "
            "values differ across runs, so they must never reach a "
            "comparable projection; use time.perf_counter() for "
            "measurement and keep elapsed time out of outputs."
        ),
        "det-unseeded-random": (
            "The random module's process-global generator (or Random() "
            "without a seed) feeds simulation state; reruns diverge.  "
            "Thread an explicitly seeded Random through instead."
        ),
        "det-float-time": (
            "round()/float() applied to a picosecond quantity in the "
            "simulation core.  Simulated time is integral end to end; "
            "float rounding reintroduces platform drift."
        ),
    }
    rule_examples = {
        "det-set-iter": (
            "repro/sim/machine.py:88: error[det-set-iter] loop iterates "
            "a set ('self._dirty'): order varies under hash "
            "randomization — iterate sorted(...)"
        ),
        "det-wallclock": (
            "repro/exp/engine.py:31: error[det-wallclock] time.time() "
            "in compared code: use perf_counter for measurement and "
            "keep wall-clock out of outputs"
        ),
        "det-unseeded-random": (
            "repro/workloads/oltp.py:12: error[det-unseeded-random] "
            "module-level random.choice(): seeded Random required"
        ),
        "det-float-time": (
            "repro/core/timeout.py:55: error[det-float-time] round() on "
            "a picosecond quantity (self._avg_ps * ...): simulated time "
            "must stay integral"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for src in files:
            if src.module == "<fixture>" or module_in(src, SET_ITER_SCOPE):
                findings.extend(self._set_iteration(src))
            if src.module == "<fixture>" or module_in(src, WALLCLOCK_SCOPE):
                findings.extend(self._wallclock(src))
            if src.module.startswith("repro") or src.module == "<fixture>":
                findings.extend(self._unseeded_random(src))
            if src.module == "<fixture>" or module_in(src, FLOAT_TIME_SCOPE):
                findings.extend(self._float_time(src))
        return findings

    # -- det-set-iter -----------------------------------------------------
    def _set_iteration(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        set_attrs = _set_attrs_of_file(src)
        # Comprehensions wrapped directly in an order-insensitive consumer
        # are fine; collect them so the walk below can skip them.
        blessed: Set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and call_name(node) in _ORDER_INSENSITIVE:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                        blessed.add(id(arg))
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = _Env(fn)
            for node in ast.walk(fn):
                iters = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
                ):
                    if id(node) in blessed or isinstance(node, (ast.SetComp, ast.DictComp)):
                        continue  # building a set/dict is not iteration order
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if _is_setlike(it, env, set_attrs):
                        out.append(
                            self.finding(
                                src, node, "det-set-iter",
                                "iteration over an unordered set: order is "
                                "hash-randomized per process — iterate "
                                "sorted(...) instead",
                            )
                        )
        return out

    # -- det-wallclock ----------------------------------------------------
    def _wallclock(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain in _WALLCLOCK_CHAINS:
                    out.append(
                        self.finding(
                            src, node, "det-wallclock",
                            f"wall-clock read ({chain}) makes output "
                            f"run-dependent — use time.perf_counter() for "
                            f"measurement and exclude it from comparable "
                            f"projections",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "time" for alias in node.names):
                    out.append(
                        self.finding(
                            src, node, "det-wallclock",
                            "importing time.time into deterministic code — "
                            "use time.perf_counter() instead",
                        )
                    )
        return out

    # -- det-unseeded-random ----------------------------------------------
    def _unseeded_random(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if (
                chain
                and chain.startswith("random.")
                and chain.split(".", 1)[1] in _GLOBAL_RANDOM_FNS
            ):
                out.append(
                    self.finding(
                        src, node, "det-unseeded-random",
                        f"{chain}() uses the process-global generator — draw "
                        f"from the seeded per-run RNG instead",
                    )
                )
            elif (
                chain in ("Random", "random.Random")
                and not node.args
                and not node.keywords
            ):
                out.append(
                    self.finding(
                        src, node, "det-unseeded-random",
                        "Random() without a seed is seeded from the OS — pass "
                        "an explicit seed",
                    )
                )
        return out

    # -- det-float-time ---------------------------------------------------
    def _float_time(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("round", "float")
                and node.args
            ):
                continue
            try:
                arg_text = ast.unparse(node.args[0])
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                continue
            if "_ps" in arg_text or arg_text.endswith("ps"):
                out.append(
                    self.finding(
                        src, node, "det-float-time",
                        f"{node.func.id}() on a picosecond quantity "
                        f"({arg_text}): simulated time must stay integral",
                    )
                )
        return out
