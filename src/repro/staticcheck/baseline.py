"""Baseline (grandfather) file for staticcheck findings.

The baseline records finding *fingerprints* (rule + path + message, line
excluded) with a count, so pre-existing findings can be acknowledged
without editing the flagged source.  The gate is directional: findings
beyond their baselined count fail the run; baselined entries with no
surviving finding are reported as stale so the file shrinks over time.
The committed baseline for this repo is empty — the tree is clean — and
the file exists so CI fails the moment a new finding appears.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.staticcheck.findings import Finding

SCHEMA = "repro.staticcheck-baseline/1"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed count.  A missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {doc.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return {str(k): int(v) for k, v in doc.get("fingerprints", {}).items()}


def write_baseline(path: Path, findings: List[Finding]) -> None:
    counts: Dict[str, int] = {}
    notes: Dict[str, str] = {}
    for f in sorted(findings):
        counts[f.fingerprint] = counts.get(f.fingerprint, 0) + 1
        notes.setdefault(f.fingerprint, f"{f.rule} {f.path}")
    doc = {
        "schema": SCHEMA,
        "fingerprints": counts,
        "notes": notes,  # human orientation only; the gate keys on fingerprints
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def diff_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[str]]:
    """Split findings against the baseline.

    Returns ``(new, stale)``: findings beyond their baselined count, and
    baselined fingerprints with no surviving finding.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for f in sorted(findings):
        if remaining.get(f.fingerprint, 0) > 0:
            remaining[f.fingerprint] -= 1
        else:
            new.append(f)
    stale = sorted(fp for fp, n in remaining.items() if n == baseline.get(fp, 0) and n > 0)
    return new, stale
