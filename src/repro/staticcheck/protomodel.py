"""Protocol transition-graph extraction and controller<->model conformance.

Every protocol here exists twice: executable controllers
(``repro.core``/``repro.directory``) and hand-written checker models
(``repro.verification``).  This pass extracts a guarded-transition
summary from *both* sides of that divide and cross-checks them:

* **controller side** — per controller role (the dispatch pass's
  ``ROLE_BY_CLASS`` table), every ``if/elif MsgType.X`` arm of the entry
  ladder becomes one guarded transition: the guard predicate, the
  handler it delegates to, the messages it can send (the PR 5 send-site
  resolver), its token-delta effect (absorb/take/``± tokens``
  arithmetic), the state fields it writes, and whether a stale-epoch
  guard protects it;
* **model side** — the ``transitions()`` methods of the checker models
  append ``(label, state)`` pairs; labels are normalized into *families*
  (``f"send{i}->{dst}"`` -> ``send*->*``) and classified with the same
  token-delta rules, scanning only the straight-line statements that
  feed each ``append``.

The two graphs meet in ``CORRESPONDENCE``, a reviewed table mapping each
message type to the controller roles that handle it and the model
transition families that represent it.  Drift on either side surfaces as
a finding:

* ``model-missing-transition`` (error) — a controller handles a message
  type but a required model family is gone;
* ``controller-missing-transition`` (error) — a model family exists but
  the corresponding controller arm does not (also: a model family the
  table cannot map at all — the table must stay complete);
* ``token-delta-mismatch`` (error) — controller and model disagree on
  the sign of the token-count change for a message type;
* ``recreation-epoch-unguarded`` (error) — a token controller handles a
  stale-epoch carrier without comparing message epoch to block epoch.

The merged extraction is also serialized as a canonical, byte-
deterministic ``repro.protomodel/1`` JSON artifact
(``python -m repro lint --pass protocol-model --model-out PATH``) whose
per-role transition counts are pinned in tests and gated byte-wise in
CI against ``protomodel-baseline.json``.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.base import Pass, attr_chain, call_name
from repro.staticcheck.dispatch import (
    FAMILY_BY_PREFIX,
    ROLE_BY_CLASS,
    _FnEnv,
    _module_mtype_constants,
    _mtype_subjects,
    _send_site_of,
    _test_mtypes,
)
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

PROTOMODEL_SCHEMA = "repro.protomodel/1"

#: Checker-model class -> display name (the model's own ``name`` field).
MODEL_CLASSES: Dict[str, str] = {
    "TokenSafetyModel": "TokenCMP-safety",
    "TokenDstModel": "TokenCMP-dst",
    "TokenArbModel": "TokenCMP-arb",
    "TokenRecreateModel": "TokenCMP-recreate",
    "DirFlatModel": "DirectoryCMP-flat",
}

_TOKEN_MODELS = (
    "TokenCMP-safety", "TokenCMP-dst", "TokenCMP-arb", "TokenCMP-recreate",
)

#: (mtype, controller roles, model names, model families, check token delta).
#: Semantics: if any listed role handles the mtype, every listed family
#: must appear in at least one listed model (else model-missing); if any
#: listed model carries a listed family, every listed role must handle
#: the mtype (else controller-missing); with check_delta, the
#: controller's token-delta sign set must intersect each listed model's
#: (both sides non-empty).
CORRESPONDENCE: Sequence[Tuple[str, Tuple[str, ...], Tuple[str, ...], Tuple[str, ...], bool]] = (
    ("TOK_GETS", ("l1", "l2", "mem"), _TOKEN_MODELS, ("send*->*", "mem->*"), True),
    ("TOK_GETX", ("l1", "l2", "mem"), _TOKEN_MODELS, ("send*->*", "mem->*"), True),
    ("TOK_DATA", ("l1", "l2", "mem"), _TOKEN_MODELS, ("deliver*", "deliver_mem"), True),
    ("TOK_ACK", ("l1", "l2", "mem"), _TOKEN_MODELS, ("deliver*", "deliver_mem"), True),
    ("TOK_WB", ("l1", "l2", "mem"), _TOKEN_MODELS, ("deliver*", "deliver_mem"), True),
    ("TOK_WB_DATA", ("l1", "l2", "mem"), _TOKEN_MODELS, ("deliver*", "deliver_mem"), True),
    # Stale-epoch discard paths exist only in the recreation model.
    ("TOK_DATA", ("l1", "l2", "mem"), ("TokenCMP-recreate",), ("stale*", "stale_mem"), False),
    ("PERSIST_REQ", ("arb",), ("TokenCMP-dst", "TokenCMP-arb"), ("persist*", "arb_enqueue*"), False),
    ("PERSIST_ACTIVATE", ("l1", "l2", "mem"), ("TokenCMP-dst", "TokenCMP-arb"), ("act@*",), False),
    ("PERSIST_DEACTIVATE", ("l1", "l2", "mem"), ("TokenCMP-dst",), ("deact@*",), False),
    ("PERSIST_DEACTIVATE", ("arb",), ("TokenCMP-arb",), ("arb_deactivate*", "clear@*"), False),
    ("TOK_RECREATE_REQ", ("mem",), ("TokenCMP-recreate",), ("recreate",), False),
    ("TOK_RECREATE_EPOCH", ("l1", "l2"), ("TokenCMP-recreate",), ("surrender*", "epoch_dup*"), False),
    ("TOK_RECREATE_ACK", ("mem",), ("TokenCMP-recreate",), ("ack*", "ack_stale", "recreate_done"), False),
    ("TOK_RECREATE_DATA", ("mem",), ("TokenCMP-recreate",), ("ack*",), False),
    ("DIR_GETS", ("l2", "mem"), ("DirectoryCMP-flat",), ("gets*", "dir_*"), False),
    ("DIR_GETX", ("l2", "mem"), ("DirectoryCMP-flat",), ("getx*", "dir_*"), False),
    ("DIR_DATA", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_data",), False),
    ("DIR_ACK", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_ack",), False),
    ("DIR_INV", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_inv",), False),
    ("DIR_FWD_GETS", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_*",), False),
    ("DIR_FWD_GETX", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_*",), False),
    ("DIR_WB_REQ", ("l2", "mem"), ("DirectoryCMP-flat",), ("dir_*", "evict_dirty*"), False),
    ("DIR_WB_GRANT", ("l1", "l2"), ("DirectoryCMP-flat",), ("deliver_wb_grant",), False),
    ("DIR_WB_DATA", ("l2", "mem"), ("DirectoryCMP-flat",), ("dir_wb_data",), False),
    ("DIR_UNBLOCK", ("l2", "mem"), ("DirectoryCMP-flat",), ("dir_unblock",), False),
)

#: Message types handled by controllers but deliberately absent from the
#: flat checker models (hierarchy-internal plumbing) — documented in
#: docs/static-analysis.md, exempt from cross-checking.
UNMAPPED_MTYPES: Tuple[str, ...] = ("DIR_RECALL", "DIR_WB_TOKEN")

#: Model transition families with no message arm: processor-initiated
#: (want/read/write/evict_clean), fault-injected (lose/crash), or
#: model-internal bookkeeping (fwd redirects, arbiter grant scheduling).
MODEL_ONLY_FAMILIES: Tuple[str, ...] = (
    "want_*", "read*", "write*", "read_hit*", "write_hit*",
    "lose", "lose_stale", "crash*",
    "fwd*->*", "fwdmem->*",
    "arb_cancel*", "arb_activate",
    "defer_*", "evict_clean*",
)

#: Stale-epoch token carriers: handling one without an epoch guard
#: breaks token recreation (a pre-crash message resurrects tokens).
EPOCH_CARRIERS = frozenset({
    "TOK_DATA", "TOK_ACK", "TOK_WB", "TOK_WB_DATA",
    "TOK_RECREATE_EPOCH", "TOK_RECREATE_ACK", "TOK_RECREATE_DATA",
})

_PLUS_CALLS = frozenset({"absorb", "_absorb"})
_MINUS_CALLS = frozenset({"take", "_take", "_send_tokens", "_respond"})
_SIMPLE_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr)
_EPOCH_RE = re.compile(r"\bep\b|epoch")
_CALL_DEPTH = 3


# ---------------------------------------------------------------------------
# Class/method resolution over the merged realm.  Fixture copies (module
# "<fixture>") override real classes of the same name so seeded-drift
# tests exercise the exact production cross-check.
# ---------------------------------------------------------------------------
class _Realm:
    def __init__(self, files: List[SourceFile]):
        self.files = files
        self.classes: Dict[str, List[Tuple[ast.ClassDef, SourceFile]]] = {}
        for src in files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append((node, src))

    def lookup(
        self, name: str, prefer_path: Optional[str] = None
    ) -> Optional[Tuple[ast.ClassDef, SourceFile]]:
        cands = self.classes.get(name, [])
        if not cands:
            return None
        if prefer_path is not None:
            same = [c for c in cands if c[1].path == prefer_path]
            if same:
                return same[0]
        fixture = [c for c in cands if c[1].module == "<fixture>"]
        if fixture:
            return fixture[-1]
        return cands[0]

    def resolve_method(
        self, clsname: str, method: str, prefer_path: Optional[str] = None
    ) -> Optional[Tuple[ast.FunctionDef, SourceFile, ast.ClassDef]]:
        """Nearest-first lookup of ``method`` through the base chain."""
        seen: Set[str] = set()
        queue: List[Tuple[str, Optional[str]]] = [(clsname, prefer_path)]
        while queue:
            name, pref = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            found = self.lookup(name, pref)
            if found is None:
                continue
            node, src = found
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == method:
                    return stmt, src, node
            for base in node.bases:
                bname = attr_chain(base)
                if bname:
                    queue.append((bname.split(".")[-1], src.path))
        return None


# ---------------------------------------------------------------------------
# Shared classifiers.
# ---------------------------------------------------------------------------
def _delta_of(nodes: Sequence[ast.AST]) -> str:
    """Token-delta sign set of a statement scope: "", "+", "-", or "+-"."""
    plus = minus = False
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in _PLUS_CALLS:
                    plus = True
                elif name in _MINUS_CALLS:
                    minus = True
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                if "tok" in ast.unparse(node).lower():
                    if isinstance(node.op, ast.Add):
                        plus = True
                    else:
                        minus = True
    return ("+" if plus else "") + ("-" if minus else "")


def _writes_of(nodes: Sequence[ast.AST]) -> List[str]:
    """Names of ``self.X`` attributes stored to anywhere in the scope."""
    out: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    tgt = tgt.value
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    out.add(tgt.attr)
    return sorted(out)


def _has_epoch_compare(nodes: Sequence[ast.AST]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Compare):
                if _EPOCH_RE.search(ast.unparse(node)):
                    return True
    return False


def _self_call_names(root: ast.AST) -> List[str]:
    """Names of ``self._x(...)`` calls in source order (deduplicated)."""
    out: List[str] = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr not in out
        ):
            out.append(node.func.attr)
    return out


# ---------------------------------------------------------------------------
# Controller-side extraction.
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Arm:
    mtypes: List[str]
    line: int
    guard: str
    handler: Optional[str]
    handler_line: int  # def line of the resolved handler (or the arm line)
    handler_path: str
    handler_resolved: bool
    sends: List[str]
    delta: str
    writes: List[str]
    epoch_guarded: Optional[bool]  # None: handler unresolved, check skipped


@dataclasses.dataclass
class ControllerInfo:
    key: str  # "family/role"
    class_name: str
    path: str
    entry: str
    ladder_path: str
    ladder_line: int
    arms: List[Arm]


def _arm_chains(
    fn: ast.FunctionDef, subjects: Set[str], constants: Dict[str, Set[str]]
) -> List[Tuple[ast.If, List[Tuple[ast.If, Set[str]]]]]:
    """Top-of-chain If nodes with their mtype-matching arms.

    Independent of the dispatch pass's ``_staticcheck_seen`` markers so
    both passes can walk the same shared trees in one run.
    """
    chains: List[Tuple[ast.If, List[Tuple[ast.If, Set[str]]]]] = []
    seen: Set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.If) or id(node) in seen:
            continue
        arms: List[Tuple[ast.If, Set[str]]] = []
        cursor: Optional[ast.If] = node
        while cursor is not None:
            seen.add(id(cursor))
            matched = _test_mtypes(cursor.test, subjects, constants)
            if matched:
                arms.append((cursor, matched))
            orelse = cursor.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                cursor = orelse[0]
            else:
                cursor = None
        if arms:
            chains.append((node, arms))
    return chains


def _collect_arm_sends(
    stmts: Sequence[ast.stmt],
    env: _FnEnv,
    src: SourceFile,
    clsname: str,
    realm: _Realm,
    depth: int,
    visited: Set[Tuple[str, str]],
) -> Set[str]:
    sends: Set[str] = set()
    for stmt in stmts:
        for call in ast.walk(stmt):
            if not isinstance(call, ast.Call):
                continue
            site = _send_site_of(call, env, src)
            if site is not None and site.mtypes:
                roles = sorted(site.roles) or ["?"]
                for mtype in sorted(site.mtypes):
                    for role in roles:
                        sends.add(f"{mtype}->{role}")
                continue
            if (
                depth > 0
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                name = call.func.attr
                if (clsname, name) in visited:
                    continue
                visited.add((clsname, name))
                resolved = realm.resolve_method(clsname, name)
                if resolved is not None:
                    sub_fn, sub_src, _ = resolved
                    sends |= _collect_arm_sends(
                        sub_fn.body, _FnEnv(sub_fn), sub_src, clsname,
                        realm, depth - 1, visited,
                    )
    return sends


def _build_arm(
    ifnode: ast.If,
    matched: Set[str],
    fn: ast.FunctionDef,
    esrc: SourceFile,
    clsname: str,
    realm: _Realm,
) -> Arm:
    env = _FnEnv(fn)
    handler: Optional[str] = None
    for name in _self_call_names(ast.Module(body=list(ifnode.body), type_ignores=[])):
        handler = name
        break
    handler_fn = handler_src = None
    if handler is not None:
        resolved = realm.resolve_method(clsname, handler)
        if resolved is not None:
            handler_fn, handler_src, _ = resolved
    scope: List[ast.AST] = [ast.Module(body=list(ifnode.body), type_ignores=[])]
    if handler_fn is not None:
        scope.append(ast.Module(body=list(handler_fn.body), type_ignores=[]))
    epoch_guarded: Optional[bool]
    if handler is not None and handler_fn is None:
        epoch_guarded = None  # can't see the handler: no verdict
    else:
        epoch_guarded = _has_epoch_compare([ifnode.test] + scope)
    sends = _collect_arm_sends(
        ifnode.body, env, esrc, clsname, realm, _CALL_DEPTH, set()
    )
    return Arm(
        mtypes=sorted(matched),
        line=ifnode.lineno,
        guard=ast.unparse(ifnode.test),
        handler=handler,
        handler_line=handler_fn.lineno if handler_fn is not None else ifnode.lineno,
        handler_path=handler_src.path if handler_src is not None else esrc.path,
        handler_resolved=handler is None or handler_fn is not None,
        sends=sorted(sends),
        delta=_delta_of(scope),
        writes=_writes_of(scope),
        epoch_guarded=epoch_guarded,
    )


def extract_controllers(files: List[SourceFile]) -> Dict[str, ControllerInfo]:
    realm = _Realm(files)
    out: Dict[str, ControllerInfo] = {}
    for clsname in sorted(ROLE_BY_CLASS):
        family, role = ROLE_BY_CLASS[clsname]
        found = realm.lookup(clsname)
        if found is None:
            continue
        node, src = found
        entry = None
        for mname in ("_process", "_receive"):
            resolved = realm.resolve_method(clsname, mname, src.path)
            if resolved is not None:
                entry = (mname, resolved)
                break
        if entry is None:
            continue
        mname, (fn, esrc, _owner) = entry
        subjects = _mtype_subjects(fn)
        constants = _module_mtype_constants(esrc)
        chains = _arm_chains(fn, subjects, constants)
        if not chains:
            continue
        arms: List[Arm] = []
        for _head, chain_arms in chains:
            for ifnode, matched in chain_arms:
                arms.append(_build_arm(ifnode, matched, fn, esrc, clsname, realm))
        arms.sort(key=lambda a: (a.line, a.mtypes))
        out[f"{family}/{role}"] = ControllerInfo(
            key=f"{family}/{role}", class_name=clsname, path=src.path,
            entry=mname, ladder_path=esrc.path,
            ladder_line=min(c[0].lineno for c in chains), arms=arms,
        )
    return out


# ---------------------------------------------------------------------------
# Model-side extraction.
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class FamilyInfo:
    count: int
    line: int  # first append site
    path: str
    delta: str
    epoch_guarded: bool


@dataclasses.dataclass
class ModelInfo:
    name: str
    class_name: str
    path: str
    line: int  # transitions() def line
    families: Dict[str, FamilyInfo]
    total: int


def _label_family(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts = []
        for value in expr.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return re.sub(r"\*+", "*", "".join(parts))
    return None


def _blocks_of(stmt: ast.stmt) -> List[List[ast.stmt]]:
    out = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if block:
            out.append(block)
    for handler in getattr(stmt, "handlers", None) or []:
        out.append(handler.body)
    return out


def _stmt_path(
    block: Sequence[ast.stmt], target: ast.AST,
    path: List[Tuple[Sequence[ast.stmt], int, ast.stmt]],
) -> bool:
    """Chain of (block, index, stmt) from ``block`` down to ``target``."""
    for idx, stmt in enumerate(block):
        if any(node is target for node in ast.walk(stmt)):
            path.append((block, idx, stmt))
            for sub in _blocks_of(stmt):
                if _stmt_path(sub, target, path):
                    break
            return True
    return False


def _transition_functions(
    clsname: str, realm: _Realm
) -> List[Tuple[ast.FunctionDef, SourceFile]]:
    """``transitions()`` plus the self-methods it calls, depth-limited."""
    root = realm.resolve_method(clsname, "transitions")
    if root is None:
        return []
    out: List[Tuple[ast.FunctionDef, SourceFile]] = []
    seen: Set[Tuple[str, int]] = set()
    frontier: List[Tuple[ast.FunctionDef, SourceFile]] = [(root[0], root[1])]
    for _ in range(_CALL_DEPTH + 1):
        nxt: List[Tuple[ast.FunctionDef, SourceFile]] = []
        for fn, src in frontier:
            key = (src.path, fn.lineno)
            if key in seen:
                continue
            seen.add(key)
            out.append((fn, src))
            for name in _self_call_names(fn):
                resolved = realm.resolve_method(clsname, name, src.path)
                if resolved is not None:
                    nxt.append((resolved[0], resolved[1]))
        frontier = nxt
        if not frontier:
            break
    return out


def extract_models(files: List[SourceFile]) -> Dict[str, ModelInfo]:
    realm = _Realm(files)
    out: Dict[str, ModelInfo] = {}
    for clsname in sorted(MODEL_CLASSES):
        name = MODEL_CLASSES[clsname]
        root = realm.resolve_method(clsname, "transitions")
        if root is None:
            continue
        root_fn, root_src, _ = root
        families: Dict[str, FamilyInfo] = {}
        total = 0
        for fn, src in _transition_functions(clsname, realm):
            for call in ast.walk(fn):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "append"
                    and call.args
                    and isinstance(call.args[0], ast.Tuple)
                    and call.args[0].elts
                ):
                    continue
                fam = _label_family(call.args[0].elts[0])
                if fam is None:
                    continue
                path: List[Tuple[Sequence[ast.stmt], int, ast.stmt]] = []
                _stmt_path(fn.body, call, path)
                # Delta scope: the append statement itself plus the
                # *simple* statements ahead of it in each enclosing
                # block.  Compound siblings (other transition sections'
                # loops/branches) are deliberately excluded.
                delta_nodes: List[ast.AST] = []
                guards: List[str] = []
                for block, idx, stmt in path:
                    delta_nodes.extend(
                        s for s in block[:idx] if isinstance(s, _SIMPLE_STMTS)
                    )
                    if isinstance(stmt, ast.If) and stmt is not path[-1][2]:
                        guards.append(ast.unparse(stmt.test))
                if path:
                    delta_nodes.append(path[-1][2])
                delta = _delta_of(delta_nodes)
                epoch = any(_EPOCH_RE.search(g) for g in guards)
                total += 1
                info = families.get(fam)
                if info is None:
                    families[fam] = FamilyInfo(
                        count=1, line=call.lineno, path=src.path,
                        delta=delta, epoch_guarded=epoch,
                    )
                else:
                    info.count += 1
                    info.line = min(info.line, call.lineno)
                    info.delta = "".join(sorted(set(info.delta) | set(delta)))
                    info.epoch_guarded = info.epoch_guarded or epoch
        if total:
            out[name] = ModelInfo(
                name=name, class_name=clsname, path=root_src.path,
                line=root_fn.lineno, families=families, total=total,
            )
    return out


# ---------------------------------------------------------------------------
# The artifact.
# ---------------------------------------------------------------------------
def build_model(files: List[SourceFile]) -> Dict[str, object]:
    """The ``repro.protomodel/1`` document, from real files only."""
    real = [f for f in files if f.module != "<fixture>"]
    controllers = extract_controllers(real)
    models = extract_models(real)
    cdoc: Dict[str, object] = {}
    for key in sorted(controllers):
        info = controllers[key]
        cdoc[key] = {
            "class": info.class_name,
            "path": info.path,
            "entry": info.entry,
            "ladder_path": info.ladder_path,
            "ladder_line": info.ladder_line,
            "transitions": len(info.arms),
            "arms": [
                {
                    "mtypes": arm.mtypes,
                    "line": arm.line,
                    "guard": arm.guard,
                    "handler": arm.handler,
                    "sends": arm.sends,
                    "delta": arm.delta,
                    "writes": arm.writes,
                    "epoch_guarded": arm.epoch_guarded,
                }
                for arm in info.arms
            ],
        }
    mdoc: Dict[str, object] = {}
    for name in sorted(models):
        info = models[name]
        mdoc[name] = {
            "class": info.class_name,
            "path": info.path,
            "line": info.line,
            "transitions": info.total,
            "families": {
                fam: {
                    "count": f.count,
                    "line": f.line,
                    "delta": f.delta,
                    "epoch_guarded": f.epoch_guarded,
                }
                for fam, f in sorted(models[name].families.items())
            },
        }
    return {
        "schema": PROTOMODEL_SCHEMA,
        "controllers": cdoc,
        "models": mdoc,
        "counts": {
            "controllers": {k: len(v.arms) for k, v in sorted(controllers.items())},
            "models": {k: v.total for k, v in sorted(models.items())},
        },
    }


def render_protomodel(doc: Dict[str, object]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# The pass.
# ---------------------------------------------------------------------------
class ProtocolModelPass(Pass):
    id = "protocol-model"
    description = "controller transition arms and checker-model transitions agree"
    rules = (
        "model-missing-transition",
        "controller-missing-transition",
        "token-delta-mismatch",
        "recreation-epoch-unguarded",
    )
    rule_docs = {
        "model-missing-transition": (
            "A controller handles a message type whose required checker-"
            "model transition family (per the protocol-model "
            "CORRESPONDENCE table) is absent: the model checker would "
            "silently stop covering that protocol path."
        ),
        "controller-missing-transition": (
            "A checker model defines a transition family whose "
            "corresponding controller arm is missing — or a family the "
            "correspondence table cannot map at all.  Either the "
            "controller lost an arm or the table needs review."
        ),
        "token-delta-mismatch": (
            "Controller and checker model disagree on the sign of the "
            "token-count change for a message type (absorb/take and "
            "'± tokens' arithmetic are classified on both sides).  "
            "Token conservation is the safety substrate; a sign flip in "
            "either artifact is protocol drift."
        ),
        "recreation-epoch-unguarded": (
            "A token controller handles a stale-epoch carrier (token "
            "data/acks or recreation messages) without comparing the "
            "message epoch against the block epoch.  After token "
            "recreation, an unguarded handler resurrects destroyed "
            "tokens from pre-crash messages."
        ),
    }
    rule_examples = {
        "model-missing-transition": (
            "repro/verification/token_model.py:1: error[model-missing-"
            "transition] model 'TokenCMP-recreate' lacks transition "
            "family 'stale_mem' required for MsgType.TOK_DATA"
        ),
        "controller-missing-transition": (
            "repro/core/memctrl.py:106: error[controller-missing-"
            "transition] TokenMemController (token mem) has no arm for "
            "MsgType.TOK_RECREATE_REQ though model 'TokenCMP-recreate' "
            "defines family 'recreate'"
        ),
        "token-delta-mismatch": (
            "repro/verification/token_model.py:150: error[token-delta-"
            "mismatch] token delta for MsgType.TOK_DATA: controller "
            "'+' vs model 'TokenCMP-safety' family 'deliver*' '-'"
        ),
        "recreation-epoch-unguarded": (
            "repro/core/base.py:123: error[recreation-epoch-unguarded] "
            "handler '_on_tokens' handles stale-epoch carrier(s) "
            "TOK_ACK, TOK_DATA without an epoch guard"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        controllers = extract_controllers(files)
        models = extract_models(files)
        if not controllers or not models:
            return []
        findings: Set[Finding] = set()
        self._cross_check(controllers, models, findings)
        self._unmapped_families(models, findings)
        self._epoch_guards(controllers, findings)
        return sorted(findings)

    # -- correspondence-table checks ------------------------------------
    def _cross_check(
        self,
        controllers: Dict[str, ControllerInfo],
        models: Dict[str, ModelInfo],
        findings: Set[Finding],
    ) -> None:
        missing_model: Dict[Tuple[str, str], Set[str]] = {}
        missing_ctrl: Dict[Tuple[str, str], Set[str]] = {}
        for mtype, roles, model_names, fams, check_delta in CORRESPONDENCE:
            family = FAMILY_BY_PREFIX.get(mtype.split("_")[0])
            if family is None:
                continue
            present = [
                controllers[f"{family}/{r}"]
                for r in roles
                if f"{family}/{r}" in controllers
            ]
            handled = [
                c for c in present
                if any(mtype in arm.mtypes for arm in c.arms)
            ]
            live_models = [models[n] for n in model_names if n in models]
            fam_owner: Dict[str, ModelInfo] = {}
            for fam in fams:
                for m in live_models:
                    if fam in m.families:
                        fam_owner[fam] = m
                        break
            if handled and live_models:
                for fam in fams:
                    if fam not in fam_owner:
                        anchor = live_models[0]
                        missing_model.setdefault(
                            (anchor.name, fam), set()
                        ).add(mtype)
            if fam_owner:
                witness = sorted(fam_owner)[0]
                for c in present:
                    if c not in handled:
                        missing_ctrl.setdefault(
                            (c.key, mtype), set()
                        ).add(f"{fam_owner[witness].name}:{witness}")
            if check_delta and handled:
                self._delta_check(mtype, handled, live_models, fams, findings)
        by_name = {m.name: m for m in models.values()}
        for (name, fam), mtypes in sorted(missing_model.items()):
            m = by_name[name]
            findings.add(Finding(
                path=m.path, line=m.line,
                rule="model-missing-transition", severity="error",
                message=(
                    f"model '{name}' lacks transition family '{fam}' "
                    f"required for "
                    + ", ".join(f"MsgType.{t}" for t in sorted(mtypes))
                ),
                snippet="",
            ))
        for (key, mtype), witnesses in sorted(missing_ctrl.items()):
            c = controllers[key]
            family, role = key.split("/")
            findings.add(Finding(
                path=c.ladder_path, line=c.ladder_line,
                rule="controller-missing-transition", severity="error",
                message=(
                    f"{c.class_name} ({family} {role}) has no arm for "
                    f"MsgType.{mtype} though the checker model defines "
                    + ", ".join(sorted(witnesses))
                ),
                snippet="",
            ))

    def _delta_check(
        self,
        mtype: str,
        handled: List[ControllerInfo],
        live_models: List[ModelInfo],
        fams: Tuple[str, ...],
        findings: Set[Finding],
    ) -> None:
        cdelta: Set[str] = set()
        for c in handled:
            for arm in c.arms:
                if mtype in arm.mtypes:
                    cdelta |= set(arm.delta)
        if not cdelta:
            return
        for m in live_models:
            for fam in fams:
                info = m.families.get(fam)
                if info is None or not info.delta:
                    continue
                mdelta = set(info.delta)
                if cdelta & mdelta:
                    continue
                findings.add(Finding(
                    path=info.path, line=info.line,
                    rule="token-delta-mismatch", severity="error",
                    message=(
                        f"token delta for MsgType.{mtype}: controller "
                        f"'{''.join(sorted(cdelta))}' vs model '{m.name}' "
                        f"family '{fam}' '{''.join(sorted(mdelta))}'"
                    ),
                    snippet="",
                ))

    # -- completeness: every model family must be mapped ---------------
    def _unmapped_families(
        self, models: Dict[str, ModelInfo], findings: Set[Finding]
    ) -> None:
        mapped: Set[str] = set(MODEL_ONLY_FAMILIES)
        for _mtype, _roles, _models, fams, _delta in CORRESPONDENCE:
            mapped |= set(fams)
        for name in sorted(models):
            m = models[name]
            for fam in sorted(m.families):
                if fam in mapped:
                    continue
                info = m.families[fam]
                findings.add(Finding(
                    path=info.path, line=info.line,
                    rule="controller-missing-transition", severity="error",
                    message=(
                        f"model '{name}' transition family '{fam}' has no "
                        f"entry in the protocol-model correspondence table "
                        f"(and is not a known model-only family)"
                    ),
                    snippet="",
                ))

    # -- epoch guards on stale carriers --------------------------------
    def _epoch_guards(
        self, controllers: Dict[str, ControllerInfo], findings: Set[Finding]
    ) -> None:
        for key in sorted(controllers):
            family, role = key.split("/")
            if family != "token" or role == "arb":
                continue
            for arm in controllers[key].arms:
                carriers = sorted(set(arm.mtypes) & EPOCH_CARRIERS)
                if not carriers or arm.epoch_guarded is not False:
                    continue
                handler = arm.handler or controllers[key].entry
                findings.add(Finding(
                    path=arm.handler_path, line=arm.handler_line,
                    rule="recreation-epoch-unguarded", severity="error",
                    message=(
                        f"handler '{handler}' handles stale-epoch "
                        f"carrier(s) "
                        + ", ".join(carriers)
                        + " without an epoch guard (token recreation "
                        "requires pre-crash messages to be discarded)"
                    ),
                    snippet="",
                ))
