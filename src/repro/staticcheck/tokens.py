"""Token-conservation discipline (rule ``token-mutation``).

Token coherence's safety argument rests on one invariant: tokens are
conserved — T per block, moved but never created or destroyed.  The
simulator concentrates every token-count change in a tiny ledger:
``TokenEntry.absorb``/``take`` (caches) and ``TokenMemController._set``
(the memory-side count).  The verification harness audits conservation
*dynamically*; this pass closes the loop statically by flagging any
token-count store outside the ledger, where a stray ``entry.tokens += 1``
would mint tokens the auditor only catches at runtime, on the configs a
test happens to run.

Flagged outside approved contexts:

* assignment/augmented-assignment to a ``.tokens`` attribute (including
  in-flight ``msg.tokens`` rewrites);
* assignment to a ``.owner`` attribute of a token entry;
* stores into a ``self._tokens[...]`` subscript.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.staticcheck.base import Pass, module_in
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

#: Packages holding full-size protocol state (the verification models
#: manipulate token *tuples* functionally and are exempt by scope).
SCOPE = (
    "repro.sim",
    "repro.core",
    "repro.directory",
    "repro.interconnect",
    "repro.snooping",
    "repro.perfect",
)

#: (class, method) pairs allowed to touch token state.  ``None`` method
#: means every method of the class (the ledger type itself).
APPROVED: Tuple[Tuple[str, Optional[str]], ...] = (
    ("TokenEntry", None),
    ("TokenMemController", "__init__"),
    ("TokenMemController", "_set"),
)

_TOKEN_ATTRS = {"tokens", "owner"}


def _is_approved(class_name: Optional[str], method: Optional[str]) -> bool:
    for cls, meth in APPROVED:
        if class_name == cls and (meth is None or method == meth):
            return True
    return False


class TokenDisciplinePass(Pass):
    id = "tokens"
    description = "token counts mutate only through the approved ledger"
    rules = ("token-mutation",)
    rule_docs = {
        "token-mutation": (
            "An assignment to a .tokens/.owner attribute (or a "
            "self._tokens[...] store) outside the approved ledger "
            "helpers (TokenEntry.absorb/take, TokenMemController._set).  "
            "Token counting is the safety substrate — tokens move but "
            "are never minted or destroyed — and every count change "
            "must go through the ledger so conservation is auditable."
        ),
    }
    rule_examples = {
        "token-mutation": (
            "repro/core/l2.py:140: error[token-mutation] direct store "
            "to 'entry.tokens' bypasses the token ledger "
            "(TokenEntry.absorb/take)"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for src in files:
            if src.module != "<fixture>" and not module_in(src, SCOPE):
                continue
            findings.extend(self._scan(src))
        return findings

    def _scan(self, src: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for ctx_class, ctx_method, stmt in _walk_with_context(src.tree):
            if _is_approved(ctx_class, ctx_method):
                continue
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for tgt in targets:
                label = _token_store(tgt)
                if label is None:
                    continue
                where = ctx_class or src.module
                out.append(
                    self.finding(
                        src, stmt, "token-mutation",
                        f"token state store ({label}) in {where}."
                        f"{ctx_method or '<module>'} bypasses the ledger — "
                        f"route it through TokenEntry.absorb/take or "
                        f"TokenMemController._set",
                    )
                )
        return out


def _token_store(tgt: ast.AST) -> Optional[str]:
    """A short label if ``tgt`` is a token-state store, else ``None``."""
    if isinstance(tgt, ast.Attribute) and tgt.attr in _TOKEN_ATTRS:
        base = tgt.value
        base_name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "?")
        return f"{base_name}.{tgt.attr}"
    if isinstance(tgt, ast.Subscript):
        value = tgt.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "_tokens"
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return "self._tokens[...]"
    if isinstance(tgt, (ast.Tuple, ast.List)):
        for elt in tgt.elts:
            label = _token_store(elt)
            if label is not None:
                return label
    return None


def _walk_with_context(tree: ast.Module):
    """Yield (class_name, method_name, assign_stmt) for every store."""

    def visit(node: ast.AST, cls: Optional[str], meth: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name, None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, cls, child.name)
            else:
                if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    yield cls, meth, child
                yield from visit(child, cls, meth)

    yield from visit(tree, None, None)
