"""Source loading and inline suppressions.

Each analyzed file is parsed once into a :class:`SourceFile` shared by
every pass.  Suppressions are inline comments of the form::

    expr_that_would_be_flagged()  # staticcheck: ignore[rule-id]
    # staticcheck: ignore[rule-a,rule-b]   (on the line above also works)

A suppression names the rule(s) it silences; ``ignore[*]`` silences every
rule on that line.  Unlike the baseline file (which grandfathers findings
without touching the source), a suppression is the permanent, reviewed
statement that a site is intentionally exempt — e.g. the kernel's
profiler reading ``perf_counter_ns``.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, List, Optional, Set

_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]+)\]")


@dataclasses.dataclass
class SourceFile:
    """One parsed python source file plus its suppression table."""

    path: str  # display path (repo-relative posix when possible)
    module: str  # dotted module name, e.g. "repro.core.base"
    text: str
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Set[str]]  # 1-based line -> suppressed rule ids

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        """True if ``rule`` is suppressed on ``lineno`` or the line above."""
        return self.suppression_site(lineno, rule) is not None

    def suppression_site(self, lineno: int, rule: str) -> Optional[int]:
        """The comment line that suppresses ``rule`` at ``lineno``, if any.

        The ``unused-suppression`` pass uses this to credit the exact
        comment a dropped finding consumed.
        """
        for ln in (lineno, lineno - 1):
            rules = self.suppressions.get(ln)
            if rules and ("*" in rules or rule in rules):
                return ln
        return None


def parse_source(path: str, text: str, module: str = "") -> SourceFile:
    """Parse one file's text into a :class:`SourceFile`."""
    tree = ast.parse(text, filename=path)
    lines = text.splitlines()
    suppressions: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            suppressions[i] = rules
    return SourceFile(
        path=path, module=module, text=text, tree=tree,
        lines=lines, suppressions=suppressions,
    )


def load_tree(
    root: Path, rel_to: Optional[Path] = None, extra_files: Optional[List[Path]] = None
) -> List[SourceFile]:
    """Load every ``.py`` file under ``root`` (a package directory).

    ``root`` must point at the ``repro`` package directory; module names
    are derived from the path relative to its parent.  ``extra_files``
    (e.g. a test fixture) are appended and get module name ``<fixture>``.
    Files are returned sorted by path so pass output is deterministic.
    """
    root = Path(root).resolve()
    rel_root = (rel_to or root.parent).resolve()
    files: List[SourceFile] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(rel_root)
        module = ".".join(path.relative_to(root.parent).with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        files.append(parse_source(rel.as_posix(), path.read_text(), module))
    for path in extra_files or []:
        path = Path(path)
        files.append(parse_source(path.as_posix(), path.read_text(), "<fixture>"))
    return files
