"""Unused-suppression pass (rule ``unused-suppression``).

A ``# staticcheck: ignore[rule]`` comment is the permanent, reviewed
statement that a site is intentionally exempt.  When the flagged code is
later refactored away, the comment survives and silently exempts
whatever lands on that line next — the suppression inventory rots.

This pass inverts the bookkeeping: every detector pass credits the
``(path, comment line)`` whose suppression consumed a finding (see
:meth:`Pass.run`), and any suppression comment with no credit is flagged
as a warning at the comment itself.  The runner guarantees that *all*
registered detector passes have contributed credits before this pass
judges — even under ``--pass suppressions`` — so a comment is only
called unused when no pass in the registry still needs it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.staticcheck.base import Pass
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile


class UnusedSuppressionPass(Pass):
    id = "suppressions"
    description = "every staticcheck suppression comment still earns its keep"
    rules = ("unused-suppression",)
    rule_docs = {
        "unused-suppression": (
            "A '# staticcheck: ignore[...]' comment no longer suppresses "
            "any finding from any registered pass.  The code it excused "
            "was refactored away; the stale comment would silently exempt "
            "whatever lands on that line next.  Delete it (or fix the "
            "rule list if it names the wrong rule)."
        ),
    }
    rule_examples = {
        "unused-suppression": (
            "repro/sim/kernel.py:42: warning[unused-suppression] "
            "suppression ignore[det-wallclock] matches no finding from "
            "any pass"
        ),
    }

    def run(
        self,
        files: List[SourceFile],
        used: Optional[Set[Tuple[str, int]]] = None,
    ) -> List[Finding]:
        used = used or set()
        out: List[Finding] = []
        for src in files:
            if src.module.startswith("repro.staticcheck"):
                # The analyzer's own sources quote suppression syntax in
                # docstrings (the comment regex cannot tell those from
                # live comments); like dispatch-unknown-mtype, the
                # package that documents the mechanism is exempt.
                continue
            for lineno in sorted(src.suppressions):
                if (src.path, lineno) in used:
                    continue
                rules = ",".join(sorted(src.suppressions[lineno]))
                finding = Finding(
                    path=src.path, line=lineno,
                    rule="unused-suppression", severity="warning",
                    message=(
                        f"suppression ignore[{rules}] matches no finding "
                        f"from any pass"
                    ),
                    snippet=src.line_at(lineno),
                )
                # A suppression comment may itself be suppressed (meta,
                # but consistent with every other rule).
                site = src.suppression_site(finding.line, finding.rule)
                if site is not None and site != lineno:
                    continue
                if site == lineno and "unused-suppression" in src.suppressions[lineno]:
                    continue
                out.append(finding)
        return sorted(out)

    def check(self, files: List[SourceFile]) -> List[Finding]:
        # Usage credits arrive via run(); a bare check() (no credits)
        # reports every suppression, which is only meaningful in tests.
        return self.run(files, used=set())
