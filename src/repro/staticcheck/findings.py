"""Finding records and the human/JSON reporters.

A :class:`Finding` pins one rule violation to a ``file:line``.  Findings
order and serialize deterministically (sorted by path, line, rule) so the
JSON report — schema ``repro.staticcheck/1`` — can be compared byte-wise
across runs, the same discipline every other artifact in this repo
follows.

The *fingerprint* is the baseline key: rule + path + message, with the
line number deliberately excluded so unrelated edits that shift code
up or down do not invalidate a baselined finding.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List

SEVERITIES = ("error", "warning")

SCHEMA = "repro.staticcheck/1"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative, posix separators
    line: int
    rule: str  # e.g. "dispatch-unhandled"
    severity: str  # "error" | "warning"
    message: str
    snippet: str = ""  # the offending source line, stripped

    @property
    def fingerprint(self) -> str:
        """Baseline key: stable across line-number shifts."""
        blob = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def render_text(findings: List[Finding]) -> str:
    """Human report: one line per finding, grouped counts at the end."""
    if not findings:
        return "staticcheck: clean (0 findings)"
    lines = []
    for f in sorted(findings):
        lines.append(f"{f.location}: {f.severity}[{f.rule}] {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
    lines.append(f"staticcheck: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: List[Finding], passes: List[str]) -> str:
    """Canonical JSON report (schema ``repro.staticcheck/1``).

    Sorted findings, sorted keys, no floats: byte-identical for identical
    inputs, so CI can diff reports directly.
    """
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "schema": SCHEMA,
        "passes": sorted(passes),
        "counts": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "by_rule": by_rule,
        },
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
