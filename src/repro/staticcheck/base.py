"""Pass interface, shared AST helpers, and the pass registry.

A pass consumes the full list of :class:`SourceFile` objects (so it can
correlate across files — the dispatch pass cross-references send sites in
one module against ladders in another) and returns findings.  Suppressed
findings are filtered centrally in :meth:`Pass.run`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile


class Pass:
    """One analysis pass.  Subclasses set ``id`` and implement ``check``."""

    id = "pass"
    description = ""
    #: rule ids this pass can emit (documented; used by reporters/tests)
    rules: Sequence[str] = ()
    #: rule id -> prose explanation (``python -m repro lint --explain RULE``)
    rule_docs: Dict[str, str] = {}
    #: rule id -> an example finding line, for the same report
    rule_examples: Dict[str, str] = {}

    def check(self, files: List[SourceFile]) -> List[Finding]:
        raise NotImplementedError

    def run(
        self,
        files: List[SourceFile],
        used: Optional[Set[Tuple[str, int]]] = None,
    ) -> List[Finding]:
        """Run ``check`` and drop inline-suppressed findings.

        Each dropped finding credits the ``(path, comment line)`` that
        consumed it into ``used`` — the ``unused-suppression`` pass then
        flags every suppression comment that earned no credit.
        """
        by_path: Dict[str, SourceFile] = {f.path: f for f in files}
        out = []
        for finding in self.check(files):
            src = by_path.get(finding.path)
            if src is not None:
                site = src.suppression_site(finding.line, finding.rule)
                if site is not None:
                    if used is not None:
                        used.add((src.path, site))
                    continue
            out.append(finding)
        return sorted(out)

    def finding(
        self, src: SourceFile, node: ast.AST, rule: str, message: str,
        severity: str = "error",
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            path=src.path, line=line, rule=rule, severity=severity,
            message=message, snippet=src.line_at(line),
        )


def module_in(src: SourceFile, packages: Sequence[str]) -> bool:
    """True when ``src`` belongs to one of the dotted ``packages``."""
    return any(
        src.module == pkg or src.module.startswith(pkg + ".") for pkg in packages
    )


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name chain (``self.params.home_mem``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called function (``home_mem`` for any chain)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def enum_members(files: List[SourceFile], class_name: str) -> Set[str]:
    """Member names of an enum class defined anywhere in ``files``."""
    members: Set[str] = set()
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for tgt in stmt.targets:
                            if isinstance(tgt, ast.Name) and not tgt.id.startswith("_"):
                                members.add(tgt.id)
    return members


def iter_classes(src: SourceFile):
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_functions(node: ast.AST):
    """All function defs nested anywhere under ``node`` (including methods)."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield sub


def make_registry():
    """Instantiate the standard pass list (import here to avoid cycles)."""
    from repro.staticcheck.determinism import DeterminismPass
    from repro.staticcheck.dispatch import DispatchPass
    from repro.staticcheck.pooling import PoolDisciplinePass
    from repro.staticcheck.protomodel import ProtocolModelPass
    from repro.staticcheck.purity import PurityPass
    from repro.staticcheck.suppressions import UnusedSuppressionPass
    from repro.staticcheck.tokens import TokenDisciplinePass

    return [
        DispatchPass(),
        ProtocolModelPass(),
        DeterminismPass(),
        TokenDisciplinePass(),
        PurityPass(),
        PoolDisciplinePass(),
        UnusedSuppressionPass(),
    ]


#: The standard passes, in report order.
PASSES = make_registry()


def explain_rule(rule: str) -> Optional[str]:
    """The ``--explain RULE`` report: doc plus example, or None if unknown."""
    for p in PASSES:
        if rule not in p.rules:
            continue
        doc = p.rule_docs.get(rule, p.description)
        lines = [f"{rule} (pass: {p.id})", "", doc]
        example = p.rule_examples.get(rule)
        if example:
            lines += ["", "Example finding:", f"  {example}"]
        return "\n".join(lines) + "\n"
    return None
