"""Dispatch-exhaustiveness pass (rule family ``dispatch-*``).

The hazard: every controller receives coherence messages through an
``if/elif MsgType.X`` ladder (``_process``/``_receive``).  Removing or
forgetting an arm does not fail loudly at the send site — the message is
built, routed, delivered, and then silently dropped (or, where the ladder
keeps its defensive ``else: raise``, crashes a run only when that message
type actually arrives).  This pass cross-references three sources, all
recovered from the AST:

1. the :class:`MsgType` enum (``interconnect/message.py``);
2. every **send site** — direct ``Message(...)`` constructions,
   ``template.clone_to(dst)`` fan-outs, and the known send wrappers
   (``_send``, ``_send_tokens``, ``_respond``, ``_broadcast``) — with the
   destination expression mapped to controller *roles* through a routing
   model (``self.params.home_mem(...)`` is a memory controller,
   ``msg.requestor`` is a cache, a loop over ``chip_l1s(...)`` is an L1,
   and so on);
3. every controller's **handled set** — the message types named in its
   ladders (inherited ladders included) or used as handler-map keys.

A message type that routing can deliver to a role but that the role's
controller never names is reported at the ladder, with the send site that
proves reachability.

Rules:

* ``dispatch-unhandled`` (error) — receivable but unhandled MsgType;
* ``dispatch-no-default`` (warning) — a ladder with >= 3 arms and no
  default arm at all (unexpected types fall through silently);
* ``dispatch-unknown-mtype`` (error) — reference to a ``MsgType`` member
  that does not exist (typo'd arm: it can never match).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.base import Pass, attr_chain, call_name, enum_members
from repro.staticcheck.findings import Finding
from repro.staticcheck.source import SourceFile

# ---------------------------------------------------------------------------
# Protocol model: controller roles and the destination-expression routing
# table.  This is the "protocol-aware" part — it encodes how the repo
# names destinations, not per-controller expected sets (those are derived
# from the send sites themselves, so the check cannot go stale).
# ---------------------------------------------------------------------------

#: MsgType name prefix -> protocol family.
FAMILY_BY_PREFIX = {"TOK": "token", "PERSIST": "token", "DIR": "directory"}

#: Concrete controller class -> (family, role).  Fixture copies used in
#: tests resolve through the same table by class name.
ROLE_BY_CLASS: Dict[str, Tuple[str, str]] = {
    "TokenL1Controller": ("token", "l1"),
    "TokenL2Controller": ("token", "l2"),
    "TokenMemController": ("token", "mem"),
    "Arbiter": ("token", "arb"),
    "DirL1Controller": ("directory", "l1"),
    "IntraDirL2Controller": ("directory", "l2"),
    "InterDirController": ("directory", "mem"),
}

#: Destination helper call -> roles it can address.
DEST_CALLS: Dict[str, Set[str]] = {
    "home_mem": {"mem"},
    "_home_mem": {"mem"},
    "home_arbiter": {"arb"},
    "l2_bank": {"l2"},
    "_chip_l2": {"l2"},
    "_home_l2": {"l2"},
    "iface_of": set(),  # interconnect route point, not a dispatch endpoint
    "chip_l1s": {"l1"},
    "token_holders": {"l1", "l2"},
    "_transient_destinations": {"l1", "l2", "mem"},
    "_persistent_broadcast_set": {"l1", "l2", "mem"},
    "destinations": {"l1"},  # SharerFilter.destinations: filtered local L1s
    "_writeback_destination": {"l2", "mem"},  # L1 -> its L2 bank; L2 -> home mem
}

#: Destination attribute (trailing name) -> roles.  ``requestor`` fields
#: name caches at both levels; replies to ``msg.src`` occur only in the
#: writeback handshake, whose initiators are L2 banks.
DEST_ATTRS: Dict[str, Set[str]] = {
    "requestor": {"l1", "l2"},
    "owner_l1": {"l1"},
    "proc": {"l1"},
    "src": {"l2"},
    "sharers": {"l1"},
}

#: Send wrappers: how to recover (mtypes, dst expression) at call sites.
#: dst is the given positional index or the ``dst`` keyword.
_SEND_TOKENS_PLAIN = frozenset({"TOK_DATA", "TOK_ACK"})
_SEND_TOKENS_WB = frozenset({"TOK_WB", "TOK_WB_DATA"})

_MAX_DEPTH = 6

Roles = Set[str]


@dataclasses.dataclass
class SendSite:
    mtypes: Set[str]
    roles: Roles
    src: SourceFile
    line: int

    @property
    def location(self) -> str:
        return f"{self.src.path}:{self.line}"


@dataclasses.dataclass
class Ladder:
    """One mtype if/elif chain (or handler map) in one method."""

    handled: Set[str]
    arms: int
    has_default: bool
    src: SourceFile
    line: int
    method: str


@dataclasses.dataclass
class ClassInfo:
    node: ast.ClassDef
    src: SourceFile
    bases: List[str]
    ladders: List[Ladder]


# ---------------------------------------------------------------------------
# Expression -> roles resolution.
# ---------------------------------------------------------------------------
class _FnEnv:
    """Per-function name environment: assignments, loop targets, appends."""

    def __init__(self, fn: ast.AST):
        self.assign: Dict[str, ast.AST] = {}
        self.loops: Dict[str, ast.AST] = {}
        self.appends: Dict[str, List[ast.AST]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name):
                    self.assign[tgt.id] = node.value
            elif isinstance(node, (ast.For, ast.comprehension)):
                tgt = node.target
                if isinstance(tgt, ast.Name):
                    self.loops[tgt.id] = node.iter
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "append"
                    and isinstance(func.value, ast.Name)
                    and node.args
                ):
                    self.appends.setdefault(func.value.id, []).append(node.args[0])


def _roles_of(expr: ast.AST, env: _FnEnv, depth: int = _MAX_DEPTH) -> Roles:
    """Conservatively map a destination expression to controller roles.

    Unknown expressions map to the empty set (no obligation created): the
    pass prefers missing an exotic send over inventing false receivables.
    """
    if depth <= 0 or expr is None:
        return set()
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in DEST_CALLS:
            return set(DEST_CALLS[name])
        if name in ("set", "sorted", "list", "tuple", "frozenset") and expr.args:
            return _roles_of(expr.args[0], env, depth - 1)
        return set()
    if isinstance(expr, ast.Attribute):
        return set(DEST_ATTRS.get(expr.attr, set()))
    if isinstance(expr, ast.Name):
        out: Roles = set()
        if expr.id in env.loops:
            out |= _roles_of(env.loops[expr.id], env, depth - 1)
        elif expr.id in env.assign:
            out |= _roles_of(env.assign[expr.id], env, depth - 1)
        for appended in env.appends.get(expr.id, ()):
            out |= _roles_of(appended, env, depth - 1)
        return out
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        out = set()
        for elt in expr.elts:
            out |= _roles_of(elt, env, depth - 1)
        return out
    if isinstance(expr, ast.BinOp):
        return _roles_of(expr.left, env, depth - 1) | _roles_of(expr.right, env, depth - 1)
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return _roles_of(expr.generators[0].iter, env, depth - 1)
    if isinstance(expr, ast.IfExp):
        return _roles_of(expr.body, env, depth - 1) | _roles_of(expr.orelse, env, depth - 1)
    return set()


def _mtypes_of(expr: ast.AST, env: _FnEnv, depth: int = _MAX_DEPTH) -> Optional[Set[str]]:
    """Message types an mtype expression can evaluate to (None = dynamic)."""
    if depth <= 0 or expr is None:
        return None
    if isinstance(expr, ast.Attribute):
        chain = attr_chain(expr)
        if chain and chain.startswith("MsgType."):
            return {expr.attr}
        return None  # e.g. msg.mtype forwarded verbatim: dynamic
    if isinstance(expr, ast.IfExp):
        body = _mtypes_of(expr.body, env, depth - 1)
        orelse = _mtypes_of(expr.orelse, env, depth - 1)
        if body is None or orelse is None:
            return None
        return body | orelse
    if isinstance(expr, ast.Name) and expr.id in env.assign:
        return _mtypes_of(env.assign[expr.id], env, depth - 1)
    return None


# ---------------------------------------------------------------------------
# Send-site collection.
# ---------------------------------------------------------------------------
def _kwarg(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _arg(call: ast.Call, index: int, name: str) -> Optional[ast.AST]:
    if len(call.args) > index:
        return call.args[index]
    return _kwarg(call, name)


def _collect_send_sites(files: List[SourceFile]) -> List[SendSite]:
    sites: List[SendSite] = []
    for src in files:
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = _FnEnv(fn)
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                site = _send_site_of(call, env, src)
                if site is not None and site.mtypes and site.roles:
                    sites.append(site)
    return sites


def _send_site_of(call: ast.Call, env: _FnEnv, src: SourceFile) -> Optional[SendSite]:
    name = call_name(call)
    if name == "Message":
        mtypes = _mtypes_of(_kwarg(call, "mtype") or _arg(call, 0, "mtype"), env)
        dst = _kwarg(call, "dst")
        if mtypes is None or dst is None:
            return None
        return SendSite(mtypes, _roles_of(dst, env), src, call.lineno)
    if name == "clone_to":
        func = call.func
        template_mtypes: Optional[Set[str]] = None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in env.assign:
                value = env.assign[base.id]
                if isinstance(value, ast.Call) and call_name(value) == "Message":
                    template_mtypes = _mtypes_of(
                        _kwarg(value, "mtype") or _arg(value, 0, "mtype"), env
                    )
        if template_mtypes is None or not call.args:
            return None
        return SendSite(template_mtypes, _roles_of(call.args[0], env), src, call.lineno)
    if name == "_send":
        mtypes = _mtypes_of(_arg(call, 0, "mtype"), env)
        dst = _arg(call, 1, "dst")
        if mtypes is None or dst is None:
            return None
        return SendSite(mtypes, _roles_of(dst, env), src, call.lineno)
    if name == "_send_tokens":
        wb = _kwarg(call, "writeback")
        is_wb = isinstance(wb, ast.Constant) and bool(wb.value)
        mtypes = set(_SEND_TOKENS_WB if is_wb else _SEND_TOKENS_PLAIN)
        dst = _arg(call, 0, "dst")
        if dst is None:
            return None
        return SendSite(mtypes, _roles_of(dst, env), src, call.lineno)
    if name == "_respond":
        dst = _arg(call, 0, "dst")
        if dst is None:
            return None
        return SendSite(
            set(_SEND_TOKENS_PLAIN), _roles_of(dst, env), src, call.lineno
        )
    if name == "_broadcast":
        # Arbiter._broadcast: activate/deactivate to every token holder
        # plus home memory.
        mtypes = _mtypes_of(_arg(call, 0, "mtype"), env)
        if mtypes is None:
            return None
        return SendSite(mtypes, {"l1", "l2", "mem"}, src, call.lineno)
    return None


# ---------------------------------------------------------------------------
# Ladder extraction.
# ---------------------------------------------------------------------------
def _module_mtype_constants(src: SourceFile) -> Dict[str, Set[str]]:
    """Module-level ``NAME = (MsgType.A, MsgType.B, ...)`` constants."""
    out: Dict[str, Set[str]] = {}
    for stmt in src.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            tgt = stmt.targets[0]
            if not isinstance(tgt, ast.Name):
                continue
            if isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set)):
                members = set()
                ok = True
                for elt in stmt.value.elts:
                    chain = attr_chain(elt)
                    if chain and chain.startswith("MsgType."):
                        members.add(chain.split(".", 1)[1])
                    else:
                        ok = False
                if ok and members:
                    out[tgt.id] = members
    return out


def _mtype_subjects(fn: ast.AST) -> Set[str]:
    """Unparsed expressions that denote the dispatched-on message type."""
    subjects = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "mtype":
            chain = attr_chain(node)
            if chain:
                subjects.add(chain)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if (
                isinstance(tgt, ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "mtype"
            ):
                subjects.add(tgt.id)
    return subjects


def _test_mtypes(
    test: ast.AST, subjects: Set[str], constants: Dict[str, Set[str]]
) -> Set[str]:
    """MsgType members a ladder arm's test matches (empty: not an arm)."""
    out: Set[str] = set()
    if isinstance(test, ast.BoolOp):
        for value in test.values:
            out |= _test_mtypes(value, subjects, constants)
        return out
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return out
    left_name = None
    if isinstance(test.left, ast.Name):
        left_name = test.left.id
    else:
        left_name = attr_chain(test.left)
    if left_name not in subjects:
        return out
    op = test.ops[0]
    comp = test.comparators[0]
    if isinstance(op, (ast.Is, ast.Eq)):
        chain = attr_chain(comp)
        if chain and chain.startswith("MsgType."):
            out.add(chain.split(".", 1)[1])
    elif isinstance(op, ast.In):
        if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
            for elt in comp.elts:
                chain = attr_chain(elt)
                if chain and chain.startswith("MsgType."):
                    out.add(chain.split(".", 1)[1])
        elif isinstance(comp, ast.Name) and comp.id in constants:
            out |= constants[comp.id]
    return out


def _ladders_in_method(
    fn: ast.FunctionDef, src: SourceFile, constants: Dict[str, Set[str]]
) -> List[Ladder]:
    subjects = _mtype_subjects(fn)
    if not subjects:
        return []
    ladders: List[Ladder] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        if getattr(node, "_staticcheck_seen", False):
            continue
        handled: Set[str] = set()
        arms = 0
        cursor: Optional[ast.If] = node
        has_default = False
        while cursor is not None:
            cursor._staticcheck_seen = True  # type: ignore[attr-defined]
            matched = _test_mtypes(cursor.test, subjects, constants)
            if matched:
                handled |= matched
                arms += 1
            orelse = cursor.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                cursor = orelse[0]
            else:
                has_default = bool(orelse)
                cursor = None
        if handled:
            ladders.append(
                Ladder(
                    handled=handled, arms=arms, has_default=has_default,
                    src=src, line=node.lineno, method=fn.name,
                )
            )
    # Handler maps: {MsgType.X: self._on_x, ...}
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            keys = set()
            for key in node.keys:
                chain = attr_chain(key) if key is not None else None
                if chain and chain.startswith("MsgType."):
                    keys.add(chain.split(".", 1)[1])
            if keys and len(keys) == len([k for k in node.keys if k is not None]):
                ladders.append(
                    Ladder(
                        handled=keys, arms=len(keys), has_default=True,
                        src=src, line=node.lineno, method=fn.name,
                    )
                )
    return ladders


def _collect_classes(files: List[SourceFile]) -> List[ClassInfo]:
    out: List[ClassInfo] = []
    for src in files:
        constants = _module_mtype_constants(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            ladders: List[Ladder] = []
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    ladders.extend(_ladders_in_method(stmt, src, constants))
            bases = []
            for base in node.bases:
                name = attr_chain(base)
                if name:
                    bases.append(name.split(".")[-1])
            out.append(ClassInfo(node=node, src=src, bases=bases, ladders=ladders))
    return out


# ---------------------------------------------------------------------------
# The pass.
# ---------------------------------------------------------------------------
class DispatchPass(Pass):
    id = "dispatch"
    description = "controller MsgType ladders handle every receivable type"
    rules = ("dispatch-unhandled", "dispatch-no-default", "dispatch-unknown-mtype")
    rule_docs = {
        "dispatch-unhandled": (
            "A send site can deliver this MsgType to the controller's "
            "role (per the routing model), but no arm of its dispatch "
            "ladder names it: the message would be built, routed, "
            "delivered, and silently dropped (or hit the defensive "
            "raise only on the configs that exercise it)."
        ),
        "dispatch-no-default": (
            "A message-type ladder with three or more arms has no "
            "default arm, so an unexpected type falls through without a "
            "trace.  Add an 'else: raise' (the repo's idiom) so drift "
            "fails loudly."
        ),
        "dispatch-unknown-mtype": (
            "The code references a MsgType member that does not exist.  "
            "A typo'd ladder arm can never match; a typo'd send can "
            "never be constructed.  Usually a rename that missed a site."
        ),
    }
    rule_examples = {
        "dispatch-unhandled": (
            "repro/core/memctrl.py:108: error[dispatch-unhandled] "
            "TokenMemController (token mem) can receive "
            "MsgType.TOK_RECREATE_REQ (sent at repro/core/l1.py:210) "
            "but its dispatch ladder never handles it"
        ),
        "dispatch-no-default": (
            "repro/core/base.py:105: warning[dispatch-no-default] "
            "TokenCacheController._process: message-type ladder has no "
            "default arm — unexpected types are silently dropped"
        ),
        "dispatch-unknown-mtype": (
            "repro/core/l2.py:88: error[dispatch-unknown-mtype] "
            "MsgType.TOK_GETZ is not a member of MsgType (typo'd arm "
            "can never match)"
        ),
    }

    def check(self, files: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        members = enum_members(files, "MsgType")
        if not members:
            return findings  # no enum in scope: nothing to check

        findings.extend(self._unknown_mtypes(files, members))

        classes = _collect_classes(files)
        by_name: Dict[str, List[ClassInfo]] = {}
        for info in classes:
            by_name.setdefault(info.node.name, []).append(info)

        # Receivable map from send sites: (family, role) -> {mtype: site}.
        receivable: Dict[Tuple[str, str], Dict[str, SendSite]] = {}
        for site in _collect_send_sites(files):
            for mtype in site.mtypes:
                family = FAMILY_BY_PREFIX.get(mtype.split("_")[0])
                if family is None:
                    continue
                for role in site.roles:
                    receivable.setdefault((family, role), {}).setdefault(mtype, site)

        for info in classes:
            role = ROLE_BY_CLASS.get(info.node.name)
            ladders = self._resolved_ladders(info, by_name)
            for ladder in ladders:
                if ladder.src.path != info.src.path:
                    continue  # inherited ladder: report once, at its own class
                if ladder.arms >= 3 and not ladder.has_default:
                    findings.append(
                        Finding(
                            path=ladder.src.path, line=ladder.line,
                            rule="dispatch-no-default", severity="warning",
                            message=(
                                f"{info.node.name}.{ladder.method}: message-type "
                                f"ladder has no default arm — unexpected types "
                                f"are silently dropped"
                            ),
                            snippet=ladder.src.line_at(ladder.line),
                        )
                    )
            if role is None:
                continue
            handled: Set[str] = set()
            for ladder in ladders:
                handled |= ladder.handled
            if not ladders:
                continue  # role class with no visible ladder: out of scope
            family = role[0]
            anchor = self._entry_ladder(ladders)
            for mtype, site in sorted(receivable.get(role, {}).items()):
                if mtype in handled:
                    continue
                findings.append(
                    Finding(
                        path=anchor.src.path, line=anchor.line,
                        rule="dispatch-unhandled", severity="error",
                        message=(
                            f"{info.node.name} ({family} {role[1]}) can receive "
                            f"MsgType.{mtype} (sent at {site.location}) but its "
                            f"dispatch ladder never handles it"
                        ),
                        snippet=anchor.src.line_at(anchor.line),
                    )
                )
        return findings

    def _resolved_ladders(
        self, info: ClassInfo, by_name: Dict[str, List[ClassInfo]]
    ) -> List[Ladder]:
        """The class's ladders plus inherited ones (nearest-first DFS)."""
        out: List[Ladder] = []
        seen: Set[str] = set()
        stack = [info]
        while stack:
            cur = stack.pop(0)
            if cur.node.name in seen:
                continue
            seen.add(cur.node.name)
            out.extend(cur.ladders)
            for base in cur.bases:
                candidates = by_name.get(base, [])
                # Prefer a base defined in the same file (fixture copies).
                same = [c for c in candidates if c.src.path == cur.src.path]
                for chosen in same or candidates[:1]:
                    stack.append(chosen)
        return out

    @staticmethod
    def _entry_ladder(ladders: List[Ladder]) -> Ladder:
        """The dispatch entry: prefer _process/_receive, else widest."""
        for name in ("_process", "_receive"):
            for ladder in ladders:
                if ladder.method == name:
                    return ladder
        return max(ladders, key=lambda lad: len(lad.handled))

    def _unknown_mtypes(
        self, files: List[SourceFile], members: Set[str]
    ) -> List[Finding]:
        out: List[Finding] = []
        for src in files:
            if src.module.startswith("repro.staticcheck"):
                continue  # this package names members in tables/docs
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Attribute):
                    chain = attr_chain(node)
                    if (
                        chain
                        and chain.startswith("MsgType.")
                        and chain.count(".") == 1
                    ):
                        name = node.attr
                        if name not in members and name.isupper():
                            out.append(
                                self.finding(
                                    src, node, "dispatch-unknown-mtype",
                                    f"MsgType.{name} is not a member of MsgType "
                                    f"(typo'd arm can never match)",
                                )
                            )
        return out
