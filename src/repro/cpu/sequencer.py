"""Per-processor sequencer: the boundary between threads and coherence.

The sequencer forwards one memory operation at a time to its L1 data
cache controller and samples completion latency.  The simplified core
model is blocking (one outstanding memory operation per processor); the
think-time directives in workloads model computation between references.
"""

from __future__ import annotations

from typing import Callable

from repro.common.stats import Stats
from repro.sim.kernel import Simulator


class Sequencer:
    """Issues memory operations for one processor.

    Data operations go to the L1 data cache; instruction fetches go to
    the L1 instruction cache (when the protocol build provides one —
    PerfectL2 builds a second magic L1 for code).
    """

    def __init__(self, sim: Simulator, proc: int, l1d, stats: Stats, l1i=None):
        self.sim = sim
        self.proc = proc
        self.l1d = l1d
        self.l1i = l1i if l1i is not None else l1d
        self.stats = stats
        self._busy = False
        # Per-processor progress, read by the liveness watchdog: a starved
        # processor is one whose ``last_complete_ps`` stops advancing.
        self.ops_completed = 0
        self.last_complete_ps = 0
        # The core is blocking (one outstanding op), so the completion
        # callback is one stable bound method with the per-op state held
        # on the sequencer — no closure per issued operation.
        self._start = 0
        self._done: Callable[[int], None] = lambda value: None
        self._complete = self._op_complete
        self._latency = stats.summaries["seq.latency_ps"]

    def issue(self, op, done: Callable[[int], None]) -> None:
        """Start ``op``; ``done(result)`` fires at completion time."""
        from repro.cpu.ops import Fetch

        assert not self._busy, f"proc {self.proc}: second op while one outstanding"
        self._busy = True
        self._start = self.sim.now
        self._done = done
        self.stats.counters["seq.ops"] += 1
        target = self.l1i if isinstance(op, Fetch) else self.l1d
        target.access(op, self._complete)

    def _op_complete(self, value: int) -> None:
        self._busy = False
        self.ops_completed += 1
        now = self.sim.now
        self.last_complete_ps = now
        self._latency.add(now - self._start)
        self._done(value)

    def issue_batch(self, ops, done: Callable[[list], None]) -> None:
        """Issue independent ops concurrently; ``done(results)`` when all
        complete (results in op order).  Ops must hit distinct blocks."""
        from repro.cpu.ops import Fetch

        assert not self._busy, f"proc {self.proc}: batch while op outstanding"
        blocks = [self.l1d.params.block_of(op.addr) for op in ops]
        if len(set(blocks)) != len(blocks):
            raise ValueError("batch operations must target distinct blocks")
        self._busy = True
        start = self.sim.now
        self.stats.bump("seq.ops", len(ops))
        self.stats.bump("seq.batches")
        results = [None] * len(ops)
        remaining = {"n": len(ops)}

        def _one(index: int):
            def _complete(value) -> None:
                results[index] = value
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._busy = False
                    self.ops_completed += 1
                    self.last_complete_ps = self.sim.now
                    self.stats.sample("seq.latency_ps", self.sim.now - start)
                    done(results)
            return _complete

        for index, op in enumerate(ops):
            target = self.l1i if isinstance(op, Fetch) else self.l1d
            target.access(op, _one(index))
