"""Memory operations and thread directives.

Workload threads are Python generators that yield these objects; the
thread driver resumes the generator with the operation's result (the
loaded value, the overwritten value for stores, or the *old* value for
atomic read-modify-writes, which is what test-and-set needs).
"""

from __future__ import annotations

import dataclasses
from typing import Callable


@dataclasses.dataclass(frozen=True)
class Load:
    """Read one word; generator receives the value read."""

    addr: int


@dataclasses.dataclass(frozen=True)
class Store:
    """Write ``value``; generator receives the previous value."""

    addr: int
    value: int


@dataclasses.dataclass(frozen=True)
class Rmw:
    """Atomic read-modify-write: new = fn(old); generator receives old.

    ``fn`` must be pure.  Examples: test-and-set ``lambda v: 1``,
    fetch-and-increment ``lambda v: v + 1``.
    """

    addr: int
    fn: Callable[[int], int]


@dataclasses.dataclass(frozen=True)
class Fetch:
    """Instruction fetch: a read serviced by the L1 *instruction* cache.

    The generator receives the fetched value (usually ignored); code
    blocks are read-only in practice, so fetches produce pure read
    sharing."""

    addr: int


@dataclasses.dataclass(frozen=True)
class Batch:
    """Independent memory operations issued concurrently.

    Models the memory-level parallelism of an out-of-order core: all ops
    are outstanding at once and the generator resumes with their results
    in order once every one has completed.  Operations must target
    distinct blocks (true dependencies belong in separate yields)."""

    ops: tuple

    def __init__(self, ops):
        object.__setattr__(self, "ops", tuple(ops))


@dataclasses.dataclass(frozen=True)
class Think:
    """Consume ``duration_ns`` of non-memory computation time."""

    duration_ns: float


MemOp = (Load, Store, Rmw, Fetch)


def is_write(op) -> bool:
    """Writes (and atomics) need exclusive permission."""
    return isinstance(op, (Store, Rmw))
