"""Generator-based processor threads.

A workload supplies one generator per processor.  The generator yields
:class:`~repro.cpu.ops.Load` / :class:`~repro.cpu.ops.Store` /
:class:`~repro.cpu.ops.Rmw` / :class:`~repro.cpu.ops.Think` objects and is
resumed with each operation's result, so synchronization idioms
(spin loops, test-and-set) read naturally::

    def thread(...):
        while (yield Load(lock)) != 0:
            pass                       # spin until the lock looks free
        if (yield Rmw(lock, lambda v: 1)) == 0:
            ...                        # acquired
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.common.types import ns
from repro.cpu.ops import Batch, Fetch, Load, Rmw, Store, Think
from repro.cpu.sequencer import Sequencer
from repro.sim.kernel import Simulator


class ProcThread:
    """Drives one workload generator on one sequencer."""

    def __init__(
        self,
        sim: Simulator,
        sequencer: Sequencer,
        gen: Generator,
        on_finish: Callable[["ProcThread"], None],
    ):
        self.sim = sim
        self.sequencer = sequencer
        self.gen = gen
        self.on_finish = on_finish
        self.finished = False
        self.finish_time: Optional[int] = None
        # Hot-path bindings: one bound method for the whole run (instead
        # of a fresh bound-method object per resumption) and a memo of
        # think durations in ps (workloads intern their Think objects, so
        # this dict stays tiny).
        self._advance_cb = self._advance
        self._send = gen.send
        self._think_ps: dict = {}

    def start(self) -> None:
        self.sim.call_after(0, self._advance_cb, None)

    def _advance(self, send_value) -> None:
        try:
            item = self._send(send_value)
        except StopIteration:
            self.finished = True
            self.finish_time = self.sim.now
            self.on_finish(self)
            return
        if isinstance(item, Think):
            delay = self._think_ps.get(item.duration_ns)
            if delay is None:
                delay = self._think_ps[item.duration_ns] = ns(item.duration_ns)
            self.sim.call_after(delay, self._advance_cb, None)
        elif isinstance(item, (Load, Store, Rmw, Fetch)):
            self.sequencer.issue(item, self._advance_cb)
        elif isinstance(item, Batch):
            self.sequencer.issue_batch(item.ops, self._advance_cb)
        else:
            raise TypeError(f"workload yielded unsupported item {item!r}")
